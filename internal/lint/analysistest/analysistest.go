// Package analysistest runs one analyzer over a testdata package and
// checks its diagnostics against `// want "regexp"` comments, mirroring
// the x/tools harness of the same name: every want must be matched by a
// diagnostic on its line, and every diagnostic must be claimed by a want.
// In-package _test.go fixtures are loaded too (loader.LoadDir includes
// them), and //dassalint:ignore directives suppress diagnostics exactly
// as they do in a real lint.Run — so testdata can pin the suppression
// behavior itself.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"dassa/internal/lint"
	"dassa/internal/lint/analysis"
	"dassa/internal/lint/loader"
)

// want is one expectation parsed from a `// want` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var strRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the package rooted at dir, applies a, and reports mismatches
// between diagnostics and want comments as test failures.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range strRE.FindAllString(m[1], -1) {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else if p, err := strconv.Unquote(q); err == nil {
						pat = p
					} else {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}

	ignores := lint.CollectIgnores(pkg)
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d analysis.Diagnostic) {
			if ignores.Covers(pkg.Fset.Position(d.Pos), a.Name) {
				return
			}
			diags = append(diags, d)
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// regexp matches the message.
func claim(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if w.matched || w.line != pos.Line || !sameFile(w.file, pos.Filename) {
			continue
		}
		if w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func sameFile(a, b string) bool {
	return a == b || strings.HasSuffix(a, b) || strings.HasSuffix(b, a)
}

// Testdata returns the conventional testdata source dir for a package:
// testdata/src/<name> under the analyzer package's own directory.
func Testdata(name string) string {
	return fmt.Sprintf("testdata/src/%s", name)
}
