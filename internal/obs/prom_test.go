package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPromGolden pins the exact text exposition: family ordering, HELP/TYPE
// lines, label rendering, histogram bucket/sum/count expansion. Prometheus
// parses this byte format; drift here breaks every scraper.
func TestPromGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("dassa_reads_total", "physical reads").Add(3)
	r.Counter("dassa_requests_total", "http requests", L("route", "/read")).Add(2)
	r.Counter("dassa_requests_total", "http requests", L("route", "/detect")).Inc()
	r.Gauge("dassa_cache_bytes", "resident cache bytes").Set(1024)
	h := r.Histogram("dassa_latency_seconds", "request latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dassa_cache_bytes resident cache bytes
# TYPE dassa_cache_bytes gauge
dassa_cache_bytes 1024
# HELP dassa_latency_seconds request latency
# TYPE dassa_latency_seconds histogram
dassa_latency_seconds_bucket{le="0.01"} 1
dassa_latency_seconds_bucket{le="0.1"} 2
dassa_latency_seconds_bucket{le="1"} 3
dassa_latency_seconds_bucket{le="+Inf"} 4
dassa_latency_seconds_sum 5.555
dassa_latency_seconds_count 4
# HELP dassa_reads_total physical reads
# TYPE dassa_reads_total counter
dassa_reads_total 3
# HELP dassa_requests_total http requests
# TYPE dassa_requests_total counter
dassa_requests_total{route="/detect"} 1
dassa_requests_total{route="/read"} 2
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition drift:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("one_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "one_total 1\n") {
		t.Fatalf("body:\n%s", rec.Body.String())
	}
}

func TestSnapshotShapes(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "x", L("k", "v")).Add(2)
	r.Histogram("h_seconds", "x", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap[`c_total{k="v"}`] != 2.0 {
		t.Fatalf("snapshot counter: %+v", snap)
	}
	hv, ok := snap["h_seconds"].(map[string]any)
	if !ok || hv["count"] != int64(1) {
		t.Fatalf("snapshot histogram: %+v", snap)
	}
	// Publishing twice must not panic (expvar.Publish does on repeats).
	r.PublishExpvar("obs_test_snapshot")
	r.PublishExpvar("obs_test_snapshot")
}
