package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpansReport(t *testing.T) {
	s := NewSpans(4)
	for rank := 0; rank < 4; rank++ {
		s.Add(rank, PhaseRead, time.Duration(rank+1)*10*time.Millisecond)
		s.Add(rank, PhaseExchange, 5*time.Millisecond)
	}
	s.Add(3, PhaseCompute, 100*time.Millisecond)

	if got := s.Max(PhaseRead); got != 40*time.Millisecond {
		t.Fatalf("Max(read) = %v, want 40ms", got)
	}
	rep := s.Report()
	if rep.Ranks != 4 {
		t.Fatalf("ranks = %d", rep.Ranks)
	}
	rd := rep.Stat(PhaseRead)
	if rd.MaxMS != 40 || rd.SumMS != 100 || rd.MeanMS != 25 {
		t.Fatalf("read stat = %+v", rd)
	}
	if ex := rep.Stat(PhaseExchange); ex.MaxMS != 5 || ex.SumMS != 20 {
		t.Fatalf("exchange stat = %+v", ex)
	}
	if cp := rep.Stat(PhaseCompute); cp.MaxMS != 100 || cp.SumMS != 100 {
		t.Fatalf("compute stat = %+v", cp)
	}
	if got := rep.TotalMaxMS(); got != 40+5+100 {
		t.Fatalf("TotalMaxMS = %g", got)
	}
	str := rep.String()
	for _, phase := range []string{"read", "exchange", "compute", "write"} {
		if !strings.Contains(str, phase) {
			t.Fatalf("report string misses %q: %s", phase, str)
		}
	}
}

func TestSpanStartEnd(t *testing.T) {
	s := NewSpans(2)
	sp := s.Start(1, PhaseCompute)
	time.Sleep(2 * time.Millisecond)
	d := sp.End()
	if d <= 0 || s.Get(1, PhaseCompute) != d {
		t.Fatalf("span recorded %v, got %v", d, s.Get(1, PhaseCompute))
	}
}

// TestSpansNilAndBoundsSafe: nil recorders and out-of-range ranks are
// dropped, not panics — views without observers call through nil.
func TestSpansNilAndBoundsSafe(t *testing.T) {
	var s *Spans
	s.Add(0, PhaseRead, time.Second)
	if s.Get(0, PhaseRead) != 0 || s.Max(PhaseRead) != 0 {
		t.Fatal("nil spans must read as zero")
	}
	if rep := s.Report(); rep.Ranks != 0 {
		t.Fatalf("nil report: %+v", rep)
	}
	s2 := NewSpans(2)
	s2.Add(5, PhaseRead, time.Second) // out of range: dropped
	if s2.Max(PhaseRead) != 0 {
		t.Fatal("out-of-range rank must be dropped")
	}
}

// TestSpansConcurrent hammers one recorder from many rank goroutines while
// a reporter reads — the -race contract for the haee run loop.
func TestSpansConcurrent(t *testing.T) {
	s := NewSpans(8)
	var wg sync.WaitGroup
	for rank := 0; rank < 8; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(rank, Phase(i%NumPhases), time.Microsecond)
			}
		}(rank)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = s.Report()
			_ = s.Max(PhaseCompute)
		}
	}()
	wg.Wait()
	<-done
	rep := s.Report()
	var sum float64
	for _, p := range Phases() {
		sum += rep.Stat(p).SumMS
	}
	if want := 8 * 1000 * 0.001; sum != want { // 8000 µs in ms
		t.Fatalf("sum = %gms, want %gms", sum, want)
	}
}

func TestObserveInto(t *testing.T) {
	s := NewSpans(3)
	s.Add(0, PhaseRead, 2*time.Millisecond)
	s.Add(1, PhaseRead, 3*time.Millisecond)
	// rank 2 idle; compute untouched entirely.
	r := NewRegistry()
	s.ObserveInto(r)
	h := r.Histogram("dassa_phase_seconds", "", LatencyBuckets(), L("phase", "read"))
	if h.Count() != 2 {
		t.Fatalf("read observations = %d, want 2", h.Count())
	}
	var sb strings.Builder
	_ = r.WriteProm(&sb)
	if strings.Contains(sb.String(), `phase="compute"`) {
		t.Fatalf("idle phase must not create a series:\n%s", sb.String())
	}
}

func TestLoggerGrammar(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	lg.Warn("kept", "k", 1)
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, `"msg":"kept"`) {
		t.Fatalf("level/format wrong: %s", out)
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level must error")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("bad format must error")
	}
	// Nop swallows everything without touching a writer.
	OrNop(nil).Error("into the void")
	if lv, _ := ParseLevel("ERROR"); lv != slog.LevelError {
		t.Fatal("ParseLevel must be case-insensitive")
	}
}
