package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestSeriesCapAdversarial is the runtime half of what the metriclabel
// analyzer enforces statically: even if an unbounded request string
// reaches a label value, the registry must stay bounded.
func TestSeriesCapAdversarial(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 10_000; i++ {
		r.Counter("req_total", "requests", L("path", fmt.Sprintf("/user/%d", i))).Inc()
	}
	r.mu.RLock()
	n := len(r.series)
	r.mu.RUnlock()
	if n > DefaultSeriesLimit+1 {
		t.Fatalf("10k distinct label values minted %d series, cap is %d(+overflow)", n, DefaultSeriesLimit)
	}

	// Everything past the cap lands in one overflow series that keeps
	// counting: 10k increments minus the ones the capped series absorbed.
	over := r.Counter("req_total", "requests", overflowLabels...)
	if got := over.Value(); got != int64(10_000-DefaultSeriesLimit) {
		t.Fatalf("overflow counter = %d, want %d", got, 10_000-DefaultSeriesLimit)
	}

	// Series created before the cap was hit keep their identity.
	if got := r.Counter("req_total", "requests", L("path", "/user/0")).Value(); got != 1 {
		t.Fatalf("pre-cap series = %d, want 1", got)
	}
}

// TestSeriesCapPerFamily: one exploding family must not steal capacity
// from well-behaved ones.
func TestSeriesCapPerFamily(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 500; i++ {
		r.Counter("noisy_total", "exploding", L("v", fmt.Sprintf("%d", i))).Inc()
	}
	for _, route := range []string{"/search", "/read", "/detect", "/status"} {
		r.Counter("quiet_total", "bounded", L("route", route)).Inc()
	}
	for _, route := range []string{"/search", "/read", "/detect", "/status"} {
		if got := r.Counter("quiet_total", "bounded", L("route", route)).Value(); got != 1 {
			t.Fatalf("route %s = %d, want 1 (family contamination)", route, got)
		}
	}
}

func TestSetSeriesLimit(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesLimit(3)
	for i := 0; i < 10; i++ {
		r.Gauge("g", "gauge", L("v", fmt.Sprintf("%d", i))).Set(float64(i))
	}
	r.mu.RLock()
	n := len(r.series)
	r.mu.RUnlock()
	if n > 4 {
		t.Fatalf("limit 3 produced %d series", n)
	}
	// n < 1 resets to the default.
	r.SetSeriesLimit(0)
	r.mu.RLock()
	lim := r.limit
	r.mu.RUnlock()
	if lim != DefaultSeriesLimit {
		t.Fatalf("reset limit = %d, want %d", lim, DefaultSeriesLimit)
	}
}

// TestHostileLabelValuesEscape: values with quotes, backslashes, and
// newlines must not break the exposition format (one sample per line,
// quoted and escaped label values).
func TestHostileLabelValuesEscape(t *testing.T) {
	r := NewRegistry()
	hostile := []string{
		`inject="1"} evil_total 9`,
		"line1\nline2",
		`back\slash`,
		"\x00\x7f",
	}
	for _, v := range hostile {
		r.Counter("h_total", "hostile labels", L("v", v)).Inc()
	}
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !strings.HasPrefix(line, "h_total{") {
			t.Fatalf("unexpected exposition line %q — label value broke out of its sample", line)
		}
		if strings.ContainsAny(line, "\x00") {
			t.Fatalf("raw control byte leaked into exposition: %q", line)
		}
	}
}

// TestSeriesCapConcurrent: racing adversarial registrations respect the
// cap and never panic (run under -race in CI).
func TestSeriesCapConcurrent(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesLimit(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c_total", "c", L("v", fmt.Sprintf("%d-%d", g, i))).Inc()
			}
		}(g)
	}
	wg.Wait()
	r.mu.RLock()
	n := len(r.series)
	r.mu.RUnlock()
	if n > 9 {
		t.Fatalf("concurrent registrations minted %d series, cap 8(+overflow)", n)
	}
	var total int64
	r.mu.RLock()
	for _, s := range r.series {
		if s.ctr != nil {
			total += s.ctr.Value()
		}
	}
	r.mu.RUnlock()
	if total != 8*200 {
		t.Fatalf("increments lost under cap: total %d, want %d", total, 8*200)
	}
}

// TestOverflowTelemetry: hitting a family's cap must itself be observable —
// per-family counts via OverflowCounts and a synthetic
// dassa_metrics_overflow_total{family=...} series in the exposition.
func TestOverflowTelemetry(t *testing.T) {
	r := NewRegistry()
	r.SetSeriesLimit(2)
	for i := 0; i < 5; i++ {
		r.Counter("exploding_total", "exploding", L("v", fmt.Sprintf("%d", i))).Inc()
	}
	r.Counter("bounded_total", "bounded", L("route", "/read")).Inc()

	ov := r.OverflowCounts()
	if len(ov) != 1 || ov["exploding_total"] != 3 {
		t.Fatalf("OverflowCounts = %v, want exploding_total:3 only", ov)
	}

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	want := `dassa_metrics_overflow_total{family="exploding_total"} 3`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, sb.String())
	}
	if strings.Contains(sb.String(), `family="bounded_total"`) {
		t.Fatal("healthy family reported as overflowed")
	}

	// The synthetic family also lands in the expvar snapshot.
	snap := r.Snapshot()
	if v, ok := snap[`dassa_metrics_overflow_total{family="exploding_total"}`]; !ok || v.(float64) != 3 {
		t.Fatalf("snapshot overflow sample = %v (present=%v)", v, ok)
	}
}
