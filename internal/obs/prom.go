package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// sample is one series captured for exposition.
type sample struct {
	labels string
	value  float64 // counters and gauges
	hist   *Histogram
}

// famSnap is one family with its samples, ready to render.
type famSnap struct {
	family
	samples []sample
}

// snapshotFamilies captures every family and series value under the read
// lock. Func-backed series are evaluated here; their funcs read the owning
// component's own synchronized counters and must not call back into the
// registry.
func (r *Registry) snapshotFamilies() []famSnap {
	r.mu.RLock()
	defer r.mu.RUnlock()
	byName := map[string]*famSnap{}
	out := make([]famSnap, 0, len(r.families))
	for name, f := range r.families {
		out = append(out, famSnap{family: *f})
		byName[name] = &out[len(out)-1]
	}
	for _, s := range r.series {
		fs := byName[s.name]
		sm := sample{labels: s.labels}
		if fs.kind == kindHistogram {
			sm.hist = s.hist
		} else {
			sm.value = s.value()
		}
		fs.samples = append(fs.samples, sm)
	}
	// Overflow self-telemetry: one synthetic series per family that has
	// collapsed registrations. Appended after the byName pointers are done
	// being used (append may reallocate out). The family label is bounded
	// by the set of registered family names, not by any request input.
	var ov []sample
	for name, f := range r.families {
		if f.overflowed > 0 {
			ov = append(ov, sample{
				labels: renderLabels([]Label{{Key: "family", Value: name}}),
				value:  float64(f.overflowed),
			})
		}
	}
	if len(ov) > 0 {
		out = append(out, famSnap{
			family: family{
				name: "dassa_metrics_overflow_total",
				help: "metric registrations collapsed into a family's overflow series",
				kind: kindCounter,
			},
			samples: ov,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	for i := range out {
		ss := out[i].samples
		sort.Slice(ss, func(a, b int) bool { return ss[a].labels < ss[b].labels })
	}
	return out
}

// formatValue renders a sample the way Prometheus expects: integers bare,
// floats with full precision.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// appendLabel merges an extra label (le=...) into a rendered label body.
func appendLabel(body, extra string) string {
	if body == "" {
		return extra
	}
	return body + "," + extra
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4). Families are sorted by name and series by label body, so
// the output is deterministic and golden-testable.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, f := range r.snapshotFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, strings.ReplaceAll(f.help, "\n", " "), f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.samples {
			if err := writeSample(w, f.name, f.kind, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, fam string, k kind, s sample) error {
	name := func(suffix, labels string) string {
		if labels == "" {
			return fam + suffix
		}
		return fam + suffix + "{" + labels + "}"
	}
	if k != kindHistogram {
		_, err := fmt.Fprintf(w, "%s %s\n", name("", s.labels), formatValue(s.value))
		return err
	}
	h := s.hist
	if h == nil {
		return nil
	}
	cum := h.snapshot()
	for i, bound := range h.bounds {
		le := fmt.Sprintf("le=%q", strconv.FormatFloat(bound, 'g', -1, 64))
		if _, err := fmt.Fprintf(w, "%s %d\n", name("_bucket", appendLabel(s.labels, le)), cum[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", name("_bucket", appendLabel(s.labels, `le="+Inf"`)), cum[len(cum)-1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", name("_sum", s.labels), formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", name("_count", s.labels), h.Count())
	return err
}

// Handler returns the /metrics HTTP handler serving the Prometheus text
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}

// Snapshot returns every series as a flat map — the expvar projection.
// Histograms expand to count/sum plus cumulative bucket counts.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, f := range r.snapshotFamilies() {
		for _, s := range f.samples {
			key := seriesKey(f.name, s.labels)
			if f.kind != kindHistogram {
				out[key] = s.value
				continue
			}
			if s.hist == nil {
				continue
			}
			h := s.hist
			cum := h.snapshot()
			bk := map[string]int64{}
			for i, bound := range h.bounds {
				bk[strconv.FormatFloat(bound, 'g', -1, 64)] = cum[i]
			}
			bk["+Inf"] = cum[len(cum)-1]
			out[key] = map[string]any{"count": h.Count(), "sum": h.Sum(), "buckets": bk}
		}
	}
	return out
}

var expvarPublished sync.Map // published names; expvar.Publish panics on repeats

// PublishExpvar exposes the registry under the given expvar name (default
// "dassa_metrics" when empty), so the standard /debug/vars endpoint carries
// the same numbers /metrics does. Safe to call more than once.
func (r *Registry) PublishExpvar(name string) {
	if name == "" {
		name = "dassa_metrics"
	}
	if _, loaded := expvarPublished.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
