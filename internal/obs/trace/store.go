package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// TraceData is one completed trace: the root's identity plus every
// recorded span (local and merged-remote alike), immutable once stored.
type TraceData struct {
	TraceID       ID         `json:"trace_id"`
	Root          string     `json:"root"`
	Process       string     `json:"process,omitempty"`
	StartUnixNano int64      `json:"start_unix_nano"`
	DurNS         int64      `json:"dur_ns"`
	Status        string     `json:"status,omitempty"`
	Spans         []SpanData `json:"spans"`
	DroppedSpans  int        `json:"dropped_spans,omitempty"`
}

// Summary is the listing row /debug/traces serves: identity and size,
// without the span payload.
type Summary struct {
	TraceID       ID      `json:"trace_id"`
	Root          string  `json:"root"`
	Process       string  `json:"process,omitempty"`
	StartUnixNano int64   `json:"start_unix_nano"`
	DurMS         float64 `json:"duration_ms"`
	Status        string  `json:"status,omitempty"`
	Spans         int     `json:"spans"`
	DroppedSpans  int     `json:"dropped_spans,omitempty"`
}

// Summary compresses the trace to its listing row.
func (td *TraceData) Summary() Summary {
	return Summary{
		TraceID:       td.TraceID,
		Root:          td.Root,
		Process:       td.Process,
		StartUnixNano: td.StartUnixNano,
		DurMS:         float64(td.DurNS) / 1e6,
		Status:        td.Status,
		Spans:         len(td.Spans),
		DroppedSpans:  td.DroppedSpans,
	}
}

// Orphans returns spans whose parent is neither 0 nor present in the
// trace — what a failed cross-process reassembly leaves behind. The root
// of a reassembled worker fragment parents under a coordinator dispatch
// span, so a healthy trace has none.
func (td *TraceData) Orphans() []SpanData {
	present := make(map[uint64]bool, len(td.Spans))
	for _, sd := range td.Spans {
		present[sd.SpanID] = true
	}
	var out []SpanData
	for _, sd := range td.Spans {
		if sd.Parent != 0 && !present[sd.Parent] {
			out = append(out, sd)
		}
	}
	return out
}

// StoreStats snapshots the store's accounting.
type StoreStats struct {
	Added   int64 `json:"added"`
	Evicted int64 `json:"evicted"`
	Recent  int   `json:"recent"`
	Slowest int   `json:"slowest"`
}

// Store holds completed traces in bounded memory: a ring buffer of the
// most recent plus the slowest-N by root duration, so a burst of fast
// requests cannot churn the interesting outliers out. No background
// goroutines; every operation is a short critical section.
type Store struct {
	mu      sync.Mutex
	ring    []*TraceData
	next    int
	filled  int
	slow    []*TraceData // sorted descending by DurNS
	maxSlow int
	added   int64
	evicted int64
}

// Default store capacities (NewStore args ≤ 0).
const (
	DefaultRecent  = 256
	DefaultSlowest = 32
)

// NewStore sizes a store: recent is the ring capacity, slowest the
// retained-outlier count.
func NewStore(recent, slowest int) *Store {
	if recent <= 0 {
		recent = DefaultRecent
	}
	if slowest <= 0 {
		slowest = DefaultSlowest
	}
	return &Store{ring: make([]*TraceData, recent), maxSlow: slowest}
}

// Add records one completed trace.
func (s *Store) Add(td *TraceData) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.added++
	if s.filled < len(s.ring) {
		s.filled++
	} else {
		s.evicted++
	}
	s.ring[s.next] = td
	s.next = (s.next + 1) % len(s.ring)

	i := sort.Search(len(s.slow), func(i int) bool { return s.slow[i].DurNS < td.DurNS })
	if i < s.maxSlow {
		s.slow = append(s.slow, nil)
		copy(s.slow[i+1:], s.slow[i:])
		s.slow[i] = td
		if len(s.slow) > s.maxSlow {
			s.slow = s.slow[:s.maxSlow]
		}
	}
}

// Recent returns the ring's traces, newest first.
func (s *Store) Recent() []*TraceData {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*TraceData, 0, s.filled)
	for i := 1; i <= s.filled; i++ {
		out = append(out, s.ring[(s.next-i+len(s.ring))%len(s.ring)])
	}
	return out
}

// Slowest returns the retained outliers, slowest first.
func (s *Store) Slowest() []*TraceData {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*TraceData, len(s.slow))
	copy(out, s.slow)
	return out
}

// Get finds a trace by ID in the ring or the slowest list (nil if it has
// been evicted from both).
func (s *Store) Get(id ID) *TraceData {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 1; i <= s.filled; i++ {
		if td := s.ring[(s.next-i+len(s.ring))%len(s.ring)]; td.TraceID == id {
			return td
		}
	}
	for _, td := range s.slow {
		if td.TraceID == id {
			return td
		}
	}
	return nil
}

// Stats snapshots the store's accounting.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Added: s.added, Evicted: s.evicted, Recent: s.filled, Slowest: len(s.slow)}
}

// WriteTree renders the trace as an indented span tree, children sorted
// by start time. Orphaned spans (parent missing — a reassembly gap) are
// printed at the top level marked "orphan". das_analyze -trace uses it;
// tests read it too.
func WriteTree(w io.Writer, td *TraceData) {
	fmt.Fprintf(w, "trace %s  %s  %.1fms  spans=%d", td.TraceID, td.Root, float64(td.DurNS)/1e6, len(td.Spans))
	if td.DroppedSpans > 0 {
		fmt.Fprintf(w, "  dropped=%d", td.DroppedSpans)
	}
	fmt.Fprintln(w)

	present := make(map[uint64]bool, len(td.Spans))
	children := make(map[uint64][]SpanData, len(td.Spans))
	for _, sd := range td.Spans {
		present[sd.SpanID] = true
	}
	var roots, orphans []SpanData
	for _, sd := range td.Spans {
		switch {
		case sd.Parent == 0:
			roots = append(roots, sd)
		case !present[sd.Parent]:
			orphans = append(orphans, sd)
		default:
			children[sd.Parent] = append(children[sd.Parent], sd)
		}
	}
	byStart := func(s []SpanData) {
		sort.Slice(s, func(i, j int) bool { return s[i].StartUnixNano < s[j].StartUnixNano })
	}
	byStart(roots)
	byStart(orphans)
	for _, cs := range children {
		byStart(cs)
	}
	var walk func(sd SpanData, depth int)
	walk = func(sd SpanData, depth int) {
		for i := 0; i < depth; i++ {
			io.WriteString(w, "  ")
		}
		fmt.Fprintf(w, "%s  %.1fms", sd.Name, float64(sd.DurNS)/1e6)
		if sd.Process != "" && sd.Process != td.Process {
			fmt.Fprintf(w, "  @%s", sd.Process)
		}
		if sd.Status != "" {
			fmt.Fprintf(w, "  [%s]", sd.Status)
		}
		for _, a := range sd.Attrs {
			fmt.Fprintf(w, "  %s=%s", a.K, a.V)
		}
		fmt.Fprintln(w)
		for _, c := range children[sd.SpanID] {
			walk(c, depth+1)
		}
	}
	for _, sd := range roots {
		walk(sd, 1)
	}
	for _, sd := range orphans {
		fmt.Fprintf(w, "  (orphan, parent %d missing)\n", sd.Parent)
		walk(sd, 1)
	}
}
