package trace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dassa/internal/testutil/leakcheck"
)

func TestIDs(t *testing.T) {
	leakcheck.Check(t)
	a, b := NewID(), NewID()
	if a == b {
		t.Fatalf("two NewID calls collided: %s", a)
	}
	if len(a) != 32 {
		t.Fatalf("NewID length = %d, want 32", len(a))
	}
	if _, ok := ParseID(string(a)); !ok {
		t.Fatalf("ParseID rejected a minted ID %s", a)
	}
	for _, bad := range []string{"", "short", "has space padpadpad", "zz!!zz!!zz", strings.Repeat("a", 65)} {
		if _, ok := ParseID(bad); ok {
			t.Fatalf("ParseID accepted %q", bad)
		}
	}
	if id := OrNew("1234abcd-ef01"); id != "1234abcd-ef01" {
		t.Fatalf("OrNew did not adopt a valid inbound id: %s", id)
	}
	if id := OrNew("!!"); len(id) != 32 {
		t.Fatalf("OrNew did not mint on invalid input: %s", id)
	}
}

func TestSpanHierarchyAndStore(t *testing.T) {
	leakcheck.Check(t)
	st := NewStore(8, 4)
	ctx, root := New(context.Background(), st, "testproc", "", "root-op")
	root.SetAttr("build_version", "dev")

	cctx, child := Start(ctx, "child")
	child.SetAttrInt("shard", 3)
	_, grand := Start(cctx, "grandchild")
	grand.SetStatus("error")
	grand.End()
	child.End()
	Add(ctx, "posthoc", time.Now().Add(-time.Millisecond), time.Millisecond)
	root.End()

	id := IDFrom(ctx)
	td := st.Get(id)
	if td == nil {
		t.Fatal("completed trace not in store")
	}
	if td.Root != "root-op" || td.Process != "testproc" {
		t.Fatalf("root metadata wrong: %+v", td.Summary())
	}
	if len(td.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(td.Spans))
	}
	if orphans := td.Orphans(); len(orphans) != 0 {
		t.Fatalf("unexpected orphans: %v", orphans)
	}
	byName := map[string]SpanData{}
	for _, sd := range td.Spans {
		byName[sd.Name] = sd
	}
	if byName["child"].Parent != byName["root-op"].SpanID {
		t.Fatal("child does not parent under root")
	}
	if byName["grandchild"].Parent != byName["child"].SpanID {
		t.Fatal("grandchild does not parent under child")
	}
	if byName["posthoc"].Parent != byName["root-op"].SpanID {
		t.Fatal("post-hoc span does not parent under the current span")
	}
	if byName["grandchild"].Status != "error" {
		t.Fatal("status lost")
	}

	// JSON export round-trips, span IDs as strings.
	raw, err := json.Marshal(td)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), fmt.Sprintf("%q", fmt.Sprint(byName["child"].SpanID))) {
		t.Fatalf("span IDs not string-encoded: %s", raw)
	}
	var back TraceData
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != len(td.Spans) || back.TraceID != td.TraceID {
		t.Fatal("JSON round-trip lost data")
	}

	var tree strings.Builder
	WriteTree(&tree, td)
	for _, want := range []string{"root-op", "  child", "    grandchild", "[error]", "shard=3"} {
		if !strings.Contains(tree.String(), want) {
			t.Fatalf("tree output missing %q:\n%s", want, tree.String())
		}
	}
}

func TestLateAndExcessSpansDropped(t *testing.T) {
	leakcheck.Check(t)
	st := NewStore(4, 2)
	ctx, root := New(context.Background(), st, "p", "", "root")
	_, late := Start(ctx, "late")
	for i := 0; i < MaxSpans+10; i++ {
		_, sp := Start(ctx, "filler")
		sp.End()
	}
	root.End()
	late.End() // after the root: must not mutate the stored trace
	td := st.Get(IDFrom(ctx))
	if td == nil {
		t.Fatal("trace missing")
	}
	if len(td.Spans) != MaxSpans {
		t.Fatalf("span cap not enforced: %d", len(td.Spans))
	}
	if td.DroppedSpans != 11 { // 10 over MaxSpans + the root's reserved slot
		t.Fatalf("dropped count = %d, want 11", td.DroppedSpans)
	}
	for _, sd := range td.Spans {
		if sd.Name == "late" {
			t.Fatal("late span mutated a completed trace")
		}
	}
}

func TestStoreEvictionUnderChurn(t *testing.T) {
	leakcheck.Check(t)
	st := NewStore(8, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, root := New(context.Background(), st, "p", "", fmt.Sprintf("op-%d-%d", g, i))
				root.End()
			}
		}(g)
	}
	wg.Wait()
	stats := st.Stats()
	if stats.Added != 200 {
		t.Fatalf("added = %d, want 200", stats.Added)
	}
	if stats.Evicted != 200-8 {
		t.Fatalf("evicted = %d, want %d", stats.Evicted, 200-8)
	}
	recent := st.Recent()
	if len(recent) != 8 {
		t.Fatalf("ring holds %d traces, want 8", len(recent))
	}
	if len(st.Slowest()) != 4 {
		t.Fatalf("slowest holds %d, want 4", len(st.Slowest()))
	}
	// Recent is newest-first.
	for i := 1; i < len(recent); i++ {
		if recent[i-1].StartUnixNano < recent[i].StartUnixNano {
			t.Fatal("Recent not newest-first")
		}
	}
}

func TestSlowestRetentionOrdering(t *testing.T) {
	leakcheck.Check(t)
	st := NewStore(2, 3)
	// Durations injected directly: Add consumes completed TraceData.
	for i, durMS := range []int64{5, 50, 1, 500, 20, 2} {
		st.Add(&TraceData{TraceID: ID(fmt.Sprintf("%08d", i)), Root: "op", DurNS: durMS * 1e6})
	}
	slow := st.Slowest()
	if len(slow) != 3 {
		t.Fatalf("retained %d, want 3", len(slow))
	}
	wantMS := []int64{500, 50, 20}
	for i, td := range slow {
		if td.DurNS != wantMS[i]*1e6 {
			t.Fatalf("slowest[%d] = %dns, want %dms", i, td.DurNS, wantMS[i])
		}
	}
	// A slow trace evicted from the tiny ring is still reachable by ID.
	if st.Get("00000003") == nil {
		t.Fatal("slowest-retained trace not reachable via Get")
	}
}

func TestRemoteReassembly(t *testing.T) {
	leakcheck.Check(t)
	st := NewStore(4, 2)
	ctx, root := New(context.Background(), st, "coordinator", "", "detect")
	dctx, dispatch := Start(ctx, "dispatch")

	// The "worker side": same trace ID, fragment parented under dispatch.
	wctx, wroot, rem := StartRemote(context.Background(), IDFrom(ctx), "worker-1", SpanFrom(dctx), "worker.shard")
	_, inner := Start(wctx, "dass.read")
	inner.End()
	wroot.End()

	Merge(dctx, rem.Spans())
	dispatch.End()
	root.End()

	td := st.Get(IDFrom(ctx))
	if td == nil {
		t.Fatal("trace missing")
	}
	if len(td.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(td.Spans))
	}
	if orphans := td.Orphans(); len(orphans) != 0 {
		t.Fatalf("reassembled trace has orphans: %v", orphans)
	}
	procs := map[string]bool{}
	for _, sd := range td.Spans {
		procs[sd.Process] = true
	}
	if !procs["coordinator"] || !procs["worker-1"] {
		t.Fatalf("processes missing from reassembled trace: %v", procs)
	}
}

func TestEndErrStatuses(t *testing.T) {
	leakcheck.Check(t)
	st := NewStore(2, 2)
	ctx, root := New(context.Background(), st, "p", "", "root")
	_, a := Start(ctx, "cancelled")
	a.EndErr(context.Canceled)
	_, b := Start(ctx, "failed")
	b.EndErr(errors.New("boom"))
	_, c := Start(ctx, "ok")
	c.EndErr(nil)
	root.End()
	td := st.Get(IDFrom(ctx))
	want := map[string]string{"cancelled": "cancelled", "failed": "error", "ok": "", "root": ""}
	for _, sd := range td.Spans {
		if got := sd.Status; got != want[sd.Name] {
			t.Fatalf("span %s status = %q, want %q", sd.Name, got, want[sd.Name])
		}
		if sd.Name == "failed" {
			if len(sd.Attrs) != 1 || sd.Attrs[0].K != "error" || sd.Attrs[0].V != "boom" {
				t.Fatalf("error attr missing: %+v", sd.Attrs)
			}
		}
	}
}

func TestAttrBounds(t *testing.T) {
	leakcheck.Check(t)
	st := NewStore(2, 2)
	_, root := New(context.Background(), st, "p", "my-id-1234", "root")
	for i := 0; i < MaxAttrs+5; i++ {
		root.SetAttr(fmt.Sprintf("k%d", i), "v")
	}
	root.SetAttr("huge", strings.Repeat("x", 10*maxAttrLen))
	root.End()
	td := st.Get("my-id-1234")
	if len(td.Spans[0].Attrs) != MaxAttrs {
		t.Fatalf("attr cap not enforced: %d", len(td.Spans[0].Attrs))
	}
	for _, a := range td.Spans[0].Attrs {
		if len(a.V) > maxAttrLen {
			t.Fatalf("attr value not truncated: %d bytes", len(a.V))
		}
	}
}

// TestDisabledPathZeroAlloc is the acceptance gate: without a trace in the
// context, the whole span surface must not allocate. Enforced here (not
// only in the benchmark) so a plain `go test` run catches regressions.
func TestDisabledPathZeroAlloc(t *testing.T) {
	leakcheck.Check(t)
	ctx := context.Background()
	start := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := Start(ctx, "hot")
		sp.SetAttr("k", "v")
		sp.SetAttrInt("n", 42)
		sp.SetStatus("error")
		sp.EndErr(nil)
		sp.End()
		Add(c2, "phase", start, time.Millisecond)
		_ = IDFrom(c2)
		_ = SpanFrom(c2)
		_ = Current(c2)
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f bytes-equivalents/op, want 0", allocs)
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "hot")
		sp.SetAttrInt("n", int64(i))
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	st := NewStore(8, 4)
	ctx, root := New(context.Background(), st, "bench", "", "root")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "hot")
		sp.SetAttrInt("n", int64(i))
		sp.End()
	}
}
