// Package trace is the request-scoped tracing layer that sits beside the
// obs metrics: one trace per request, hierarchical wall-clock spans
// carried through context.Context, recorded into a bounded in-memory
// Store. It is built for the cluster's cross-process shape — dassd mints
// the trace ID, the coordinator stamps it into shard requests, workers
// record their fragment locally and ship the spans home, and the
// coordinator grafts them back in (Merge) so /debug/traces shows one
// tree per request.
//
// The disabled path is free: a context that carries no trace makes Start
// return (ctx, nil) without allocating, and every method on a nil *Span
// is a no-op. Code annotates unconditionally; only traced requests pay.
package trace

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"errors"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// Header is the HTTP header that carries a trace ID across the daemon's
// edge: dassd adopts a valid inbound value and echoes the chosen ID on
// every response.
const Header = "X-Dassa-Trace"

// Bounds. A trace is a debugging artifact, not a log: spans and attrs cap
// out rather than grow with the request.
const (
	// MaxSpans bounds the spans one trace retains (root included).
	MaxSpans = 512
	// MaxAttrs bounds the key/value annotations on one span.
	MaxAttrs = 16
	// maxAttrLen truncates oversized attr values (error strings, paths).
	maxAttrLen = 256
)

// ID is a request-scoped trace identifier: hex characters (dashes
// allowed, so external correlation IDs pass through).
type ID string

// NewID mints a 128-bit random trace ID.
func NewID() ID {
	var b [16]byte
	_, _ = cryptorand.Read(b[:])
	return ID(hex.EncodeToString(b[:]))
}

// ParseID validates an externally supplied trace ID: 8–64 characters of
// [0-9a-fA-F-]. Anything else is rejected so a hostile header cannot
// smuggle arbitrary bytes into logs and JSON.
func ParseID(s string) (ID, bool) {
	if len(s) < 8 || len(s) > 64 {
		return "", false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F', c == '-':
		default:
			return "", false
		}
	}
	return ID(s), true
}

// OrNew adopts a valid inbound ID or mints a fresh one.
func OrNew(s string) ID {
	if id, ok := ParseID(s); ok {
		return id
	}
	return NewID()
}

// Attr is one bounded key/value annotation on a span.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// SpanData is the immutable record of one completed span. Span IDs are
// random 64-bit values (unique within a trace across processes without
// coordination); they serialize as strings so JSON consumers never round
// them through float64.
type SpanData struct {
	SpanID        uint64 `json:"span_id,string"`
	Parent        uint64 `json:"parent,string,omitempty"`
	Name          string `json:"name"`
	Process       string `json:"process,omitempty"`
	StartUnixNano int64  `json:"start_unix_nano"`
	DurNS         int64  `json:"dur_ns"`
	Status        string `json:"status,omitempty"`
	Attrs         []Attr `json:"attrs,omitempty"`
}

// newSpanID returns a nonzero random span ID. Randomness (not a counter)
// keeps worker-minted IDs collision-free against coordinator-minted ones
// in the same reassembled trace.
func newSpanID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// Span is one live span. A Span is owned by the goroutine that started
// it until End; a nil *Span (tracing disabled) no-ops every method.
type Span struct {
	t      *Trace
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	status string
	ended  bool
}

// ID returns the span's identifier (0 on a nil span) — what a remote
// fragment parents under.
func (sp *Span) ID() uint64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

// SetAttr annotates the span, bounded by MaxAttrs / maxAttrLen.
func (sp *Span) SetAttr(k, v string) {
	if sp == nil || sp.ended || len(sp.attrs) >= MaxAttrs {
		return
	}
	if len(v) > maxAttrLen {
		v = v[:maxAttrLen]
	}
	sp.attrs = append(sp.attrs, Attr{K: k, V: v})
}

// SetAttrInt annotates the span with an integer value. The nil check
// runs before the formatting, so disabled-path callers pay nothing.
func (sp *Span) SetAttrInt(k string, v int64) {
	if sp == nil {
		return
	}
	sp.SetAttr(k, strconv.FormatInt(v, 10))
}

// SetStatus overrides the span's status ("" is OK; the conventional
// values are "error", "cancelled", and "degraded").
func (sp *Span) SetStatus(status string) {
	if sp == nil || sp.ended {
		return
	}
	sp.status = status
}

// End records the span into its trace. Idempotent; ending the root span
// completes the trace and hands it to the store.
func (sp *Span) End() {
	if sp == nil || sp.ended {
		return
	}
	sp.ended = true
	sp.t.record(SpanData{
		SpanID:        sp.id,
		Parent:        sp.parent,
		Name:          sp.name,
		Process:       sp.t.proc,
		StartUnixNano: sp.start.UnixNano(),
		DurNS:         int64(time.Since(sp.start)),
		Status:        sp.status,
		Attrs:         sp.attrs,
	}, sp == sp.t.root)
}

// EndErr ends the span with a status derived from err: nil keeps the
// current status, a cancellation becomes "cancelled", anything else
// "error" with the message attached.
func (sp *Span) EndErr(err error) {
	if sp == nil {
		return
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			sp.SetStatus("cancelled")
		} else {
			sp.SetStatus("error")
			sp.SetAttr("error", err.Error())
		}
	}
	sp.End()
}

// Trace collects one request's spans. Safe for concurrent span Ends and
// Merges from many goroutines.
type Trace struct {
	id    ID
	proc  string
	store *Store

	mu      sync.Mutex
	spans   []SpanData
	dropped int
	done    bool
	root    *Span
}

func (t *Trace) newSpan(name string, parent uint64) *Span {
	return &Span{t: t, id: newSpanID(), parent: parent, name: name, start: time.Now()}
}

// record appends one completed span; the root's completion snapshots the
// trace into the store. Spans landing after the root ended are dropped
// (counted), never appended — the exported trace is immutable.
func (t *Trace) record(sd SpanData, isRoot bool) {
	var td *TraceData
	t.mu.Lock()
	switch {
	case t.done:
		t.dropped++
	case len(t.spans) >= MaxSpans-1 && !isRoot: // reserve the root's slot
		t.dropped++
	default:
		t.spans = append(t.spans, sd)
	}
	if isRoot && !t.done {
		t.done = true
		td = &TraceData{
			TraceID:       t.id,
			Root:          sd.Name,
			Process:       t.proc,
			StartUnixNano: sd.StartUnixNano,
			DurNS:         sd.DurNS,
			Status:        sd.Status,
			Spans:         t.spans,
			DroppedSpans:  t.dropped,
		}
	}
	t.mu.Unlock()
	if td != nil && t.store != nil {
		t.store.Add(td)
	}
}

// merge grafts remotely recorded spans in, bounded like local ones.
func (t *Trace) merge(spans []SpanData) {
	t.mu.Lock()
	for _, sd := range spans {
		if t.done || len(t.spans) >= MaxSpans {
			t.dropped++
			continue
		}
		if len(sd.Attrs) > MaxAttrs {
			sd.Attrs = sd.Attrs[:MaxAttrs]
		}
		t.spans = append(t.spans, sd)
	}
	t.mu.Unlock()
}

// ctxKey is the zero-size context key; a Value lookup with it does not
// allocate, which is what keeps the disabled path free.
type ctxKey struct{}

// ref binds a trace and the current span into a context.
type ref struct {
	t  *Trace
	sp *Span
}

func fromCtx(ctx context.Context) *ref {
	r, _ := ctx.Value(ctxKey{}).(*ref)
	return r
}

// New starts a trace: the given ID (or a fresh one when empty) and a root
// span, both bound into the returned context. Ending the root span
// completes the trace into store. proc names this process in the spans.
func New(ctx context.Context, store *Store, proc string, id ID, rootName string) (context.Context, *Span) {
	if id == "" {
		id = NewID()
	}
	t := &Trace{id: id, proc: proc, store: store}
	sp := t.newSpan(rootName, 0)
	t.root = sp
	return context.WithValue(ctx, ctxKey{}, &ref{t: t, sp: sp}), sp
}

// Start begins a child of the context's current span. Without a trace in
// ctx it returns (ctx, nil) with zero allocations.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	cur := fromCtx(ctx)
	if cur == nil {
		return ctx, nil
	}
	sp := cur.t.newSpan(name, cur.sp.id)
	return context.WithValue(ctx, ctxKey{}, &ref{t: cur.t, sp: sp}), sp
}

// Add records an already-measured interval as a completed child span of
// the context's current span — the post-hoc path for phase timings that
// are measured anyway (haee's read/exchange/compute/write). No-op (and,
// called with no attrs, allocation-free) without a trace.
func Add(ctx context.Context, name string, start time.Time, d time.Duration, attrs ...Attr) {
	cur := fromCtx(ctx)
	if cur == nil {
		return
	}
	if len(attrs) > MaxAttrs {
		attrs = attrs[:MaxAttrs]
	}
	cur.t.record(SpanData{
		SpanID:        newSpanID(),
		Parent:        cur.sp.id,
		Name:          name,
		Process:       cur.t.proc,
		StartUnixNano: start.UnixNano(),
		DurNS:         int64(d),
		Attrs:         attrs,
	}, false)
}

// IDFrom returns the trace ID the context carries ("" without one), for
// log correlation. Allocation-free either way.
func IDFrom(ctx context.Context) ID {
	if r := fromCtx(ctx); r != nil {
		return r.t.id
	}
	return ""
}

// Current returns the context's current live span (nil without a trace)
// so a handler can annotate the span an outer layer opened. The span must
// not have been ended by that layer yet.
func Current(ctx context.Context) *Span {
	if r := fromCtx(ctx); r != nil {
		return r.sp
	}
	return nil
}

// SpanFrom returns the current span's ID (0 without a trace) — what a
// dispatching coordinator writes into wire.ShardRequest.ParentSpan.
func SpanFrom(ctx context.Context) uint64 {
	if r := fromCtx(ctx); r != nil {
		return r.sp.id
	}
	return 0
}

// Merge grafts remotely recorded span fragments (a worker's shipped
// spans) into the trace ctx carries. No-op without a trace.
func Merge(ctx context.Context, spans []SpanData) {
	if len(spans) == 0 {
		return
	}
	if r := fromCtx(ctx); r != nil {
		r.t.merge(spans)
	}
}

// Remote collects the local fragment of a trace owned by another process:
// spans parent under the owner's dispatch span and are harvested with
// Spans (after the fragment root ends) instead of landing in a store.
type Remote struct {
	t *Trace
}

// StartRemote opens a trace fragment for remote reassembly: a root span
// named rootName parented under parentSpan, bound into the returned
// context. End the returned span, then ship Spans home.
func StartRemote(ctx context.Context, id ID, proc string, parentSpan uint64, rootName string) (context.Context, *Span, *Remote) {
	t := &Trace{id: id, proc: proc}
	sp := t.newSpan(rootName, parentSpan)
	t.root = sp
	return context.WithValue(ctx, ctxKey{}, &ref{t: t, sp: sp}), sp, &Remote{t: t}
}

// Spans snapshots the fragment's recorded spans.
func (r *Remote) Spans() []SpanData {
	r.t.mu.Lock()
	out := make([]SpanData, len(r.t.spans))
	copy(out, r.t.spans)
	r.t.mu.Unlock()
	return out
}
