package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Phase is one stage of a parallel run — the decomposition the paper's
// Figures 8–10 plot per rank: time spent reading blocks from storage,
// exchanging data between ranks (all-to-all, broadcast, halo), computing
// the UDF, and writing results.
type Phase uint8

const (
	PhaseRead Phase = iota
	PhaseExchange
	PhaseCompute
	PhaseWrite
	// NumPhases sizes per-rank accumulators.
	NumPhases = 4
)

func (p Phase) String() string {
	switch p {
	case PhaseRead:
		return "read"
	case PhaseExchange:
		return "exchange"
	case PhaseCompute:
		return "compute"
	case PhaseWrite:
		return "write"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// Phases lists every phase in report order.
func Phases() []Phase {
	return []Phase{PhaseRead, PhaseExchange, PhaseCompute, PhaseWrite}
}

// Spans accumulates per-rank phase durations for one parallel run. Each
// rank adds to its own slot; slots are atomics so a late Report (or a
// concurrent metrics scrape) never races rank goroutines.
type Spans struct {
	ns [][NumPhases]atomic.Int64
}

// NewSpans sizes a recorder for a world of the given rank count.
func NewSpans(ranks int) *Spans {
	if ranks < 1 {
		ranks = 1
	}
	return &Spans{ns: make([][NumPhases]atomic.Int64, ranks)}
}

// Ranks returns the world size the recorder was built for.
func (s *Spans) Ranks() int { return len(s.ns) }

// Add accumulates d into (rank, phase). Out-of-range ranks are dropped —
// a recorder sized for one world must not panic if reused on a larger one.
func (s *Spans) Add(rank int, p Phase, d time.Duration) {
	if s == nil || rank < 0 || rank >= len(s.ns) || p >= NumPhases {
		return
	}
	s.ns[rank][p].Add(int64(d))
}

// Get returns the accumulated duration of (rank, phase).
func (s *Spans) Get(rank int, p Phase) time.Duration {
	if s == nil || rank < 0 || rank >= len(s.ns) || p >= NumPhases {
		return 0
	}
	return time.Duration(s.ns[rank][p].Load())
}

// Max returns the largest accumulated duration of the phase across ranks —
// the per-phase wall time a bulk-synchronous run actually pays.
func (s *Spans) Max(p Phase) time.Duration {
	if s == nil {
		return 0
	}
	var m int64
	for r := range s.ns {
		if v := s.ns[r][p].Load(); v > m {
			m = v
		}
	}
	return time.Duration(m)
}

// Span is one in-progress phase measurement on one rank.
type Span struct {
	s     *Spans
	rank  int
	phase Phase
	t0    time.Time
}

// Start begins timing (rank, phase); call End to record.
func (s *Spans) Start(rank int, p Phase) Span {
	return Span{s: s, rank: rank, phase: p, t0: time.Now()}
}

// End records the elapsed time and returns it.
func (sp Span) End() time.Duration {
	d := time.Since(sp.t0)
	sp.s.Add(sp.rank, sp.phase, d)
	return d
}

// PhaseStat summarizes one phase across ranks.
type PhaseStat struct {
	// MaxMS is the slowest rank's time — the phase's wall-clock cost in a
	// bulk-synchronous run.
	MaxMS float64 `json:"max_ms"`
	// MeanMS is the average across ranks; a Max≫Mean gap means imbalance.
	MeanMS float64 `json:"mean_ms"`
	// SumMS is total rank-time spent in the phase.
	SumMS float64 `json:"sum_ms"`
}

// PhaseReport is the machine-readable per-run phase breakdown, keyed by
// phase name ("read", "exchange", "compute", "write").
type PhaseReport struct {
	Ranks  int                  `json:"ranks"`
	Phases map[string]PhaseStat `json:"phases"`
}

// Stat returns the named phase's stats (zero value when absent).
func (r PhaseReport) Stat(p Phase) PhaseStat { return r.Phases[p.String()] }

// TotalMaxMS sums the per-phase max times — the modeled bulk-synchronous
// wall time of the run.
func (r PhaseReport) TotalMaxMS() float64 {
	var t float64
	for _, st := range r.Phases {
		t += st.MaxMS
	}
	return t
}

func (r PhaseReport) String() string {
	var b strings.Builder
	for i, p := range Phases() {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%s %.1fms", p, r.Stat(p).MaxMS)
	}
	fmt.Fprintf(&b, " (max across %d ranks)", r.Ranks)
	return b.String()
}

// Report reduces the per-rank accumulators into a PhaseReport.
func (s *Spans) Report() PhaseReport {
	rep := PhaseReport{Phases: map[string]PhaseStat{}}
	if s == nil {
		return rep
	}
	rep.Ranks = len(s.ns)
	for _, p := range Phases() {
		var sum, maxNS int64
		for r := range s.ns {
			v := s.ns[r][p].Load()
			sum += v
			if v > maxNS {
				maxNS = v
			}
		}
		rep.Phases[p.String()] = PhaseStat{
			MaxMS:  float64(maxNS) / 1e6,
			MeanMS: float64(sum) / float64(len(s.ns)) / 1e6,
			SumMS:  float64(sum) / 1e6,
		}
	}
	return rep
}

// ObserveInto folds every rank's per-phase time into the registry's
// dassa_phase_seconds histograms, one series per phase. Ranks that spent no
// time in a phase are skipped so empty phases don't flood the zero bucket.
func (s *Spans) ObserveInto(reg *Registry) {
	if s == nil || reg == nil {
		return
	}
	for _, p := range Phases() {
		var h *Histogram
		for r := range s.ns {
			v := s.ns[r][p].Load()
			if v == 0 {
				continue
			}
			if h == nil {
				h = reg.Histogram("dassa_phase_seconds",
					"per-rank time spent in each run phase (read/exchange/compute/write)",
					LatencyBuckets(), L("phase", p.String()))
			}
			h.Observe(time.Duration(v).Seconds())
		}
	}
}
