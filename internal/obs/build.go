package obs

// Build identity, stamped at link time:
//
//	go build -ldflags "-X dassa/internal/obs.BuildVersion=v0.8.0 \
//	                   -X dassa/internal/obs.BuildCommit=$(git rev-parse --short HEAD)"
//
// /status reports them and every trace's root span carries them, so a
// captured trace names the exact binary that produced it.
var (
	BuildVersion = "dev"
	BuildCommit  = "unknown"
)
