// Package obs is DASSA's unified observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) exposed via
// expvar and the Prometheus text format, lightweight phase-span tracing
// that reproduces the paper's per-rank read/exchange/compute breakdown
// (Figs. 8–10), and a log/slog-based structured logger shared by the CLIs
// and the dassd daemon. Everything here is stdlib-only so any package —
// including the lowest storage layer — can instrument itself without
// import cycles or new dependencies.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key=value dimension attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, cumulative only at exposition
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative per-bound counts (ending with +Inf ≡ Count).
func (h *Histogram) snapshot() []int64 {
	out := make([]int64, len(h.buckets))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// LatencyBuckets are the default request/phase duration buckets (seconds):
// 1ms to ~65s in powers of two.
func LatencyBuckets() []float64 {
	return ExpBuckets(0.001, 2, 17)
}

// SizeBuckets are the default byte-size buckets: 1 KiB to 4 GiB.
func SizeBuckets() []float64 {
	return ExpBuckets(1024, 4, 12)
}

// ExpBuckets returns n exponentially spaced upper bounds starting at start.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: bad bucket spec start=%g factor=%g n=%d", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// kind is the exposition type of a metric family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered (name, labels) time series.
type series struct {
	name   string
	labels string // rendered {k="v",...} body, "" when unlabeled
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	// fn, when non-nil, is a live value read at exposition time
	// (CounterFunc/GaugeFunc). Guarded by the registry lock.
	fn func() float64
}

// family groups the series sharing one metric name.
type family struct {
	name  string
	help  string
	kind  kind
	count int // live series in this family, overflow included
	// overflowed counts registrations collapsed into the overflow series —
	// the runtime evidence that some label value is unbounded. Exposed as
	// dassa_metrics_overflow_total{family=...} so a cap being hit is itself
	// observable instead of silently flattening one family's resolution.
	overflowed int64
}

// Registry holds metric families and their series. All methods are safe for
// concurrent use; registration is idempotent — asking for an existing
// (name, labels) series returns the same collector, so package-level
// instrumentation and per-server instrumentation can share one registry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	series   map[string]*series
	limit    int // max series per family; excess collapses into overflow
}

// DefaultSeriesLimit is the per-family series cap: far above any bounded
// label set the code registers (routes, phases, outcomes), far below what
// an unbounded label value could mint. The static analyzer (metriclabel)
// keeps unbounded values out at compile time; this cap is the runtime
// backstop for whatever slips through.
const DefaultSeriesLimit = 64

// overflowLabels marks the single series that absorbs registrations past
// the family's cap.
var overflowLabels = []Label{{Key: "overflow", Value: "true"}}

// NewRegistry returns an empty registry with the default series limit.
func NewRegistry() *Registry {
	return &Registry{
		families: map[string]*family{},
		series:   map[string]*series{},
		limit:    DefaultSeriesLimit,
	}
}

// SetSeriesLimit changes the per-family series cap (n < 1 resets to the
// default). Existing series are kept even if they exceed the new cap;
// only future registrations are bounded by it.
func (r *Registry) SetSeriesLimit(n int) {
	if n < 1 {
		n = DefaultSeriesLimit
	}
	r.mu.Lock()
	r.limit = n
	r.mu.Unlock()
}

var std = NewRegistry()

// Default returns the process-wide registry the storage and engine layers
// instrument themselves into. dassd exposes it at /metrics.
func Default() *Registry { return std }

// renderLabels renders sorted k="v" pairs; label values are escaped.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

func seriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// register finds or creates the series; the family's kind must match.
// A family at its series limit hands all further label sets the shared
// overflow series instead of minting new ones, so an unbounded label
// value degrades one family's resolution rather than growing the
// registry (and every scrape of it) without bound.
func (r *Registry) register(name, help string, k kind, labels []Label) *series {
	lb := renderLabels(labels)
	key := seriesKey(name, lb)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if ok {
		if f.kind != k {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s, was %s", name, k, f.kind))
		}
	} else {
		f = &family{name: name, help: help, kind: k}
		r.families[name] = f
	}
	if s, ok := r.series[key]; ok {
		return s
	}
	if f.count >= r.limit {
		f.overflowed++
		lb = renderLabels(overflowLabels)
		key = seriesKey(name, lb)
		if s, ok := r.series[key]; ok {
			return s
		}
	}
	s := &series{name: name, labels: lb}
	r.series[key] = s
	f.count++
	return s
}

// Counter returns the counter series (name, labels), creating it if needed.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ctr == nil {
		s.ctr = &Counter{}
		s.fn = nil
	}
	return s.ctr
}

// Gauge returns the gauge series (name, labels), creating it if needed.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.gauge == nil {
		s.gauge = &Gauge{}
		s.fn = nil
	}
	return s.gauge
}

// CounterFunc registers a counter whose value is read live from fn at
// exposition time — for components that already keep their own atomic
// counters (the block cache, the admission gate). Re-registering replaces
// fn, so a restarted component takes over its series.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.fn = fn
	s.ctr = nil
}

// GaugeFunc registers a live-read gauge (see CounterFunc).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	s.fn = fn
	s.gauge = nil
}

// Histogram returns the histogram series (name, labels) with the given
// bucket upper bounds, creating it if needed. An existing series keeps its
// original buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		s.hist = &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	}
	return s.hist
}

// OverflowCounts reports, per family name, how many registrations were
// collapsed into that family's overflow series. An empty map means every
// family stayed under the cap — the healthy state.
func (r *Registry) OverflowCounts() map[string]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := map[string]int64{}
	for name, f := range r.families {
		if f.overflowed > 0 {
			out[name] = f.overflowed
		}
	}
	return out
}

// value reads a scalar series (counter or gauge, direct or func-backed).
func (s *series) value() float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.ctr != nil:
		return float64(s.ctr.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	default:
		return 0
	}
}
