package obs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps the -log-level flag grammar to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds the shared structured logger: level is debug|info|warn|
// error, format is text|json. This is the one logger every CLI and the
// daemon use, so operators get a single grammar for all of them.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

// LogFlags registers the shared -log-level and -log-format flags on fs
// (the process flag set when nil) and returns a constructor to call after
// parsing; it reports flag-grammar errors rather than exiting.
func LogFlags(fs *flag.FlagSet) func(w io.Writer) (*slog.Logger, error) {
	if fs == nil {
		fs = flag.CommandLine
	}
	level := fs.String("log-level", "info", "log level: debug | info | warn | error")
	format := fs.String("log-format", "text", "log format: text | json")
	return func(w io.Writer) (*slog.Logger, error) {
		return NewLogger(w, *level, *format)
	}
}

// nopHandler drops everything (slog.DiscardHandler arrives in go 1.24;
// this repo pins 1.22).
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// Nop returns a logger that discards every record — the nil-safe default
// for components whose config left the logger unset.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

// OrNop returns l, or a discarding logger when l is nil.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return Nop()
	}
	return l
}
