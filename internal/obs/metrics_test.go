package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}

	h := r.Histogram("h_seconds", "a histogram", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-106.5) > 1e-9 {
		t.Fatalf("hist sum = %g, want 106.5", h.Sum())
	}
	// le semantics: 1 falls into the le="1" bucket.
	cum := h.snapshot()
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 4 {
		t.Fatalf("cumulative buckets = %v, want [2 3 4]", cum)
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("k", "v"))
	b := r.Counter("x_total", "other help", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	c := r.Counter("x_total", "help", L("k", "w"))
	if a == c {
		t.Fatal("different labels must make a distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter family as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "wrong kind")
}

func TestFuncBackedSeries(t *testing.T) {
	r := NewRegistry()
	n := 7.0
	r.GaugeFunc("live", "live value", func() float64 { return n })
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "live 7\n") {
		t.Fatalf("func gauge missing:\n%s", sb.String())
	}
	// Re-registration replaces the source (a restarted component takes
	// over its series).
	r.GaugeFunc("live", "live value", func() float64 { return 9 })
	sb.Reset()
	_ = r.WriteProm(&sb)
	if !strings.Contains(sb.String(), "live 9\n") {
		t.Fatalf("replaced func gauge not visible:\n%s", sb.String())
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// registration, updates, scrapes, and expvar snapshots all at once — and
// then checks the totals. Run with -race, this is the concurrency contract.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 16
		perW    = 2000
	)
	var wg sync.WaitGroup
	wg.Add(workers + 2)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Half the workers share series; half get their own.
			label := L("w", []string{"a", "b"}[w%2])
			for i := 0; i < perW; i++ {
				r.Counter("hammer_total", "h", label).Inc()
				r.Gauge("hammer_gauge", "h", label).Set(float64(i))
				r.Histogram("hammer_seconds", "h", LatencyBuckets(), label).Observe(0.004)
			}
		}(w)
	}
	// Concurrent scrapers.
	for s := 0; s < 2; s++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				_ = r.WriteProm(&sb)
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()

	total := r.Counter("hammer_total", "h", L("w", "a")).Value() +
		r.Counter("hammer_total", "h", L("w", "b")).Value()
	if want := int64(workers * perW); total != want {
		t.Fatalf("lost increments: %d, want %d", total, want)
	}
	hcount := r.Histogram("hammer_seconds", "h", LatencyBuckets(), L("w", "a")).Count() +
		r.Histogram("hammer_seconds", "h", LatencyBuckets(), L("w", "b")).Count()
	if want := int64(workers * perW); hcount != want {
		t.Fatalf("lost observations: %d, want %d", hcount, want)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
