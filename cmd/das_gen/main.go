// Command das_gen generates a synthetic DAS acquisition: a time series of
// DASF files with background noise and optional planted events (vehicles,
// an earthquake, a persistent vibration — the paper's Figure 1b/10 mix).
//
// Example:
//
//	das_gen -dir ./data -channels 96 -rate 100 -seconds 4 -files 24 -events fig10
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dassa/internal/dasf"
	"dassa/internal/dasgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("das_gen: ")
	var (
		dir      = flag.String("dir", "./das-data", "output directory")
		channels = flag.Int("channels", 96, "number of fiber channels")
		rate     = flag.Float64("rate", 100, "sampling rate (Hz)")
		seconds  = flag.Float64("seconds", 4, "seconds of data per file")
		files    = flag.Int("files", 24, "number of files to write")
		seed     = flag.Int64("seed", 1, "random seed")
		events   = flag.String("events", "fig10", "planted events: fig10 | none")
		f64      = flag.Bool("float64", false, "store float64 samples (default float32)")
		compress = flag.Bool("compress", false, "store chunked-deflate files (smaller archives)")
	)
	flag.Parse()

	cfg := dasgen.Config{
		Channels:    *channels,
		SampleRate:  *rate,
		FileSeconds: *seconds,
		NumFiles:    *files,
		Seed:        *seed,
		DType:       dasf.Float32,
		Compress:    *compress,
	}
	if *f64 {
		cfg.DType = dasf.Float64
	}
	var evs []dasgen.Event
	switch *events {
	case "fig10":
		evs = dasgen.Fig10Events(cfg)
	case "none":
	default:
		log.Fatalf("unknown -events %q (want fig10 or none)", *events)
	}

	paths, err := dasgen.Generate(*dir, cfg, evs)
	if err != nil {
		log.Fatal(err)
	}
	var total int64
	for _, p := range paths {
		if st, err := os.Stat(p); err == nil {
			total += st.Size()
		}
	}
	fmt.Printf("wrote %d files (%d channels × %d samples each, %.1f MB total) to %s\n",
		len(paths), cfg.Channels, cfg.SamplesPerFile(), float64(total)/1e6, *dir)
	for _, ev := range evs {
		fmt.Printf("  planted: %s\n", ev.Describe())
	}
}
