// Command das_info prints a DASF file's metadata: kind, shape, dtype, the
// global key-value list (the paper's Figure 4 structure), members for
// virtual files, and optionally the per-channel metadata.
//
//	das_info westSac_170620100545.dasf
//	das_info -channels merged.vca.dasf
//	das_info -json westSac_170620100545.dasf     # machine-readable
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"dassa/internal/dasf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("das_info: ")
	channels := flag.Bool("channels", false, "also print per-channel metadata")
	asJSON := flag.Bool("json", false, "emit metadata as JSON (one object, or an array for multiple files)")
	flag.Parse()
	if flag.NArg() == 0 {
		log.Fatal("usage: das_info [-channels] [-json] <file.dasf>...")
	}

	if *asJSON {
		docs := make([]dasf.InfoJSON, 0, flag.NArg())
		for _, path := range flag.Args() {
			r, err := dasf.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			doc := dasf.NewInfoJSON(r.Info())
			if *channels {
				pcm, err := r.PerChannelMeta()
				if err != nil {
					log.Fatal(err)
				}
				doc.AttachPerChannel(pcm)
			}
			r.Close()
			docs = append(docs, doc)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var err error
		if len(docs) == 1 {
			err = enc.Encode(docs[0])
		} else {
			err = enc.Encode(docs)
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	for _, path := range flag.Args() {
		r, err := dasf.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		info := r.Info()
		fmt.Printf("%s:\n", path)
		fmt.Printf("  kind: %s, shape: %d channels × %d samples, dtype: %s\n",
			info.Kind, info.NumChannels, info.NumSamples, info.DType)
		keys := make([]string, 0, len(info.Global))
		for k := range info.Global {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s : %s\n", k, info.Global[k])
		}
		if info.Kind == dasf.KindVCA {
			fmt.Printf("  members (%d):\n", len(info.Members))
			for _, m := range info.Members {
				fmt.Printf("    %012d  %d×%d  %s\n", m.Timestamp, m.NumChannels, m.NumSamples, m.Name)
			}
		}
		if *channels {
			pcm, err := r.PerChannelMeta()
			if err != nil {
				log.Fatal(err)
			}
			if pcm == nil {
				fmt.Println("  (no per-channel metadata)")
			}
			for c, m := range pcm {
				fmt.Printf("  channel %d:\n", c)
				ks := make([]string, 0, len(m))
				for k := range m {
					ks = append(ks, k)
				}
				sort.Strings(ks)
				for _, k := range ks {
					fmt.Printf("    %s : %s\n", k, m[k])
				}
			}
		}
		r.Close()
	}
}
