// Command das_analyze runs a DAS analysis over a DASF file or VCA with the
// hybrid ArrayUDF execution engine: earthquake detection via local
// similarity (Algorithm 2) or traffic-noise interferometry (Algorithm 3).
//
// Examples:
//
//	das_analyze -in merged.vca.dasf -op localsimi -nodes 2 -cores 4 -out sim.dasf
//	das_analyze -in merged.vca.dasf -op interferometry -mode mpi
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"dassa/internal/arrayudf"
	"dassa/internal/cluster"
	"dassa/internal/dasf"
	"dassa/internal/dass"
	"dassa/internal/detect"
	"dassa/internal/faults"
	"dassa/internal/haee"
	"dassa/internal/mpi"
	"dassa/internal/obs"
	"dassa/internal/obs/trace"
	"dassa/internal/pfs"
)

// Exit codes, so scripted pipelines can branch on outcome: 0 = success
// (including degraded-but-completed, which prints a WARNING line), 1 = data
// error (unreadable input, failed run), 2 = usage error (bad flags).
const (
	exitData  = 1
	exitUsage = 2
)

// logger is the shared structured logger (obs.LogFlags); set right after
// flag parsing, before any fatal path can run.
var logger = obs.Nop()

// fatalUsage reports a bad invocation (exit 2).
// runCluster fans a localsimi/stalta request out across dassw shard
// workers and prints the same style of report as a local run. Shards
// lost to worker failure are re-dispatched; under -fail-policy degrade
// whatever stays lost is NaN-masked into the quality report.
func runCluster(ctx context.Context, addrs string, req cluster.Request, policy dass.FailPolicy, outPath string, nt int, rate float64) {
	var workers []string
	for _, a := range strings.Split(addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			workers = append(workers, a)
		}
	}
	co, err := cluster.NewCoordinator(cluster.Config{
		Workers:    workers,
		FailPolicy: policy,
		Log:        logger,
		Registry:   obs.Default(),
	})
	if err != nil {
		fatalUsage("%v", err)
	}
	defer co.Close()
	res, err := co.Run(ctx, req)
	if err != nil {
		fatalData(err)
	}
	switch req.Op {
	case cluster.OpLocalSimi:
		regions := detect.FindEvents(res.Data, 1.5)
		fmt.Printf("detected %d events:\n", len(regions))
		secPerIdx := float64(nt) / rate / float64(res.Data.Samples)
		for _, r := range regions {
			fmt.Printf("  t=[%.1fs,%.1fs) channels=[%d,%d) peak=%.3f\n",
				float64(r.TLo)*secPerIdx, float64(r.THi)*secPerIdx, r.ChLo, r.ChHi, r.Peak)
		}
	case cluster.OpSTALTA:
		fmt.Printf("STA/LTA map: %d channels × %d samples, max ratio %.2f\n",
			res.Data.Channels, res.Data.Samples, detect.MaxRatio(res.Data.Data))
	}
	if outPath != "" {
		meta := dasf.Meta{"Producer": dasf.S("dassa-cluster")}
		if err := dasf.WriteData(outPath, meta, nil, res.Data, dasf.Float64); err != nil {
			fatalData(err)
		}
		fmt.Printf("result written to %s\n", outPath)
	}
	fmt.Printf("cluster: %d worker(s), %d shard(s), %d redispatched, %d degraded, wall %v\n",
		res.Workers, res.Shards, res.Redispatched, res.DegradedShards, res.Wall.Round(time.Millisecond))
	fmt.Printf("I/O: %d opens, %d read calls, %.1f MB read\n",
		res.Trace.Opens, res.Trace.Reads, float64(res.Trace.BytesRead)/1e6)
	if res.Quality.Degraded() {
		fmt.Printf("WARNING: run degraded; %s\n", res.Quality)
		for _, f := range res.Quality.LostFiles {
			fmt.Printf("WARNING:   lost member: %s\n", f)
		}
	}
}

func fatalUsage(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(exitUsage)
}

// fatalData reports a failed run over real data (exit 1).
func fatalData(v ...any) {
	logger.Error(fmt.Sprint(v...))
	os.Exit(exitData)
}

func main() {
	var (
		in    = flag.String("in", "", "input DASF data file or VCA (required)")
		op    = flag.String("op", "localsimi", "analysis: localsimi | interferometry | stacked | stalta")
		nodes = flag.Int("nodes", 1, "simulated compute nodes (MPI ranks in hybrid mode)")
		cores = flag.Int("cores", 4, "cores per node (threads in hybrid mode)")
		mode  = flag.String("mode", "hybrid", "execution mode: hybrid | mpi")
		read  = flag.String("read", "independent", "block read strategy: independent | commavoid")
		out   = flag.String("out", "", "write the result array to this DASF file")
		rate  = flag.Float64("rate", 0, "sampling rate override (Hz; default from metadata)")

		m       = flag.Int("M", 25, "localsimi: half window width (samples)")
		k       = flag.Int("K", 1, "localsimi: channel offset")
		l       = flag.Int("L", 4, "localsimi: half lag-scan extent")
		stride  = flag.Int("stride", 10, "localsimi: evaluate every N samples")
		master  = flag.Int("master", 0, "interferometry: master channel")
		cutoff  = flag.Float64("cutoff", 0, "interferometry: lowpass cutoff Hz (default rate/8)")
		resampQ = flag.Int("resample", 2, "interferometry: keep 1/Q of the samples")
		maxlag  = flag.Int("maxlag", 128, "interferometry: correlation half-width (resampled samples)")

		window  = flag.Int("window", 0, "stacked: correlation window (raw samples; default 1/8 of the record)")
		overlap = flag.Int("overlap", 0, "stacked: window overlap (raw samples)")
		sta     = flag.Int("sta", 0, "stalta: short window (samples; default rate/5)")
		lta     = flag.Int("lta", 0, "stalta: long window (samples; default 4*rate)")

		workers = flag.String("workers", "", "comma-separated dassw worker addresses; localsimi/stalta fan out across them instead of the in-process engine")

		traceRun = flag.Bool("trace", false, "record a request trace of the run and print the span tree afterwards")

		retries = flag.Int("retries", 0, "retry transient read failures up to N times (exponential backoff)")
		failPol = flag.String("fail-policy", "abort", "member file still bad after retries: abort | degrade (NaN gaps + quality report)")
		inject  = flag.String("inject", "", "fault injection spec for chaos testing, e.g. 'seed=1,transient=0.3,max=3,missing=a.dasf'")
	)
	newLogger := obs.LogFlags(nil)
	flag.Parse()
	var logErr error
	if logger, logErr = newLogger(os.Stderr); logErr != nil {
		fmt.Fprintf(os.Stderr, "das_analyze: %v\n", logErr)
		os.Exit(exitUsage)
	}
	slog.SetDefault(logger)
	if *in == "" {
		fatalUsage("-in is required")
	}
	policy, err := dass.ParseFailPolicy(*failPol)
	if err != nil {
		fatalUsage("%v", err)
	}
	if *retries < 0 {
		fatalUsage("-retries must be ≥ 0, got %d", *retries)
	}
	if *retries > 0 {
		dasf.SetRetryPolicy(faults.WithRetries(*retries))
	}
	if *inject != "" {
		cfg, err := faults.ParseSpec(*inject)
		if err != nil {
			fatalUsage("%v", err)
		}
		dasf.SetInjector(faults.New(cfg))
	}

	v, err := dass.OpenView(*in)
	if err != nil {
		fatalData(err)
	}
	nch, nt := v.Shape()
	sampleRate := *rate
	if sampleRate == 0 {
		if f, ok := v.Info().Global["SamplingFrequency(HZ)"]; ok {
			sampleRate = float64(f.Int)
		}
	}
	if sampleRate == 0 {
		fatalUsage("sampling rate unknown; pass -rate")
	}
	fmt.Printf("input: %s (%d channels × %d samples, %d file(s), %.0f Hz)\n",
		*in, nch, nt, v.NumMembers(), sampleRate)

	// -trace: record the run into a one-shot local store; the cluster
	// coordinator and the local engine both annotate through the view's
	// context, and workers ship their spans back over the wire, so the
	// printed tree is the same cross-process view dassd serves at
	// /debug/traces/{id}.
	ctx := context.Background()
	var traceStore *trace.Store
	var traceRoot *trace.Span
	if *traceRun {
		traceStore = trace.NewStore(1, 1)
		ctx, traceRoot = trace.New(ctx, traceStore, "das_analyze", trace.NewID(), "analyze "+*op)
		v = v.WithContext(ctx)
	}

	if *workers != "" {
		creq := cluster.Request{View: v, Rate: sampleRate}
		switch *op {
		case "localsimi":
			p := detect.LocalSimiParams{M: *m, K: *k, L: *l, Stride: *stride}
			if err := p.Validate(); err != nil {
				fatalUsage("%v", err)
			}
			creq.Op, creq.LocalSimi = cluster.OpLocalSimi, p
		case "stalta":
			p := detect.STALTAParams{STASamples: *sta, LTASamples: *lta, Stride: *stride}
			if p.STASamples == 0 {
				p.STASamples = max(int(sampleRate/5), 2)
			}
			if p.LTASamples == 0 {
				p.LTASamples = max(int(4*sampleRate), p.STASamples+1)
			}
			if err := p.Validate(); err != nil {
				fatalUsage("%v", err)
			}
			creq.Op, creq.STALTA = cluster.OpSTALTA, p
		default:
			// The interferometry family is a rows workload the wire
			// protocol does not carry; it stays in process.
			fatalUsage("-workers runs localsimi or stalta; -op %s is local only", *op)
		}
		runCluster(ctx, *workers, creq, policy, *out, nt, sampleRate)
		printTrace(traceStore, traceRoot)
		return
	}

	engMode := haee.Hybrid
	if *mode == "mpi" {
		engMode = haee.PureMPI
	} else if *mode != "hybrid" {
		fatalUsage("unknown -mode %q", *mode)
	}
	engCfg := haee.Config{Nodes: *nodes, CoresPerNode: *cores, Mode: engMode, FailPolicy: policy}
	switch *read {
	case "independent":
	case "commavoid":
		engCfg.ReadStrategy = arrayudf.CommAvoidingRead
	default:
		fatalUsage("unknown -read %q", *read)
	}
	eng := haee.New(engCfg)

	var rep haee.Report
	switch *op {
	case "localsimi":
		p := detect.LocalSimiParams{M: *m, K: *k, L: *l, Stride: *stride}
		if err := p.Validate(); err != nil {
			fatalUsage("%v", err)
		}
		rep, err = eng.RunPoints(v, haee.PointsWorkload{Spec: p.Spec(), UDF: p.UDF()}, *out)
		if err != nil {
			fatalData(err)
		}
		regions := detect.FindEvents(rep.Output, 1.5)
		fmt.Printf("detected %d events:\n", len(regions))
		secPerIdx := float64(nt) / sampleRate / float64(rep.Output.Samples)
		for _, r := range regions {
			fmt.Printf("  t=[%.1fs,%.1fs) channels=[%d,%d) peak=%.3f\n",
				float64(r.TLo)*secPerIdx, float64(r.THi)*secPerIdx, r.ChLo, r.ChHi, r.Peak)
		}
	case "interferometry":
		params := detect.InterferometryParams{
			Rate:          sampleRate,
			FilterOrder:   3,
			CutoffHz:      *cutoff,
			ResampleP:     1,
			ResampleQ:     *resampQ,
			MasterChannel: *master,
			MaxLag:        *maxlag,
			FailPolicy:    policy,
		}
		if params.CutoffHz == 0 {
			params.CutoffHz = sampleRate / 8
		}
		if err := params.Validate(); err != nil {
			fatalUsage("%v", err)
		}
		parts := params.Workload(nt)
		wl := haee.RowsWorkload{
			Spec:    arrayudf.Spec{},
			RowLen:  parts.RowLen,
			Prepare: parts.Prepare,
			UDF:     parts.UDF,
		}
		rep, err = eng.RunRows(v, wl, *out)
		if err != nil {
			fatalData(err)
		}
		fmt.Printf("noise correlations: %d channels × %d lags against master channel %d\n",
			rep.Output.Channels, rep.Output.Samples, *master)
	case "stacked":
		params := detect.StackingParams{
			InterferometryParams: detect.InterferometryParams{
				Rate:          sampleRate,
				FilterOrder:   3,
				CutoffHz:      *cutoff,
				ResampleP:     1,
				ResampleQ:     *resampQ,
				MasterChannel: *master,
				MaxLag:        *maxlag,
				FailPolicy:    policy,
			},
			WindowSamples:  *window,
			OverlapSamples: *overlap,
		}
		if params.CutoffHz == 0 {
			params.CutoffHz = sampleRate / 8
		}
		if params.WindowSamples == 0 {
			params.WindowSamples = max(nt/8, 64)
		}
		if err := params.Validate(); err != nil {
			fatalUsage("%v", err)
		}
		// The stacked master is prepared per rank from the view.
		rowLen := params.StackedRowLen()
		rep, err = eng.RunRows(v, haee.RowsWorkload{
			Spec:   arrayudf.Spec{},
			RowLen: rowLen,
			Prepare: func(c *mpi.Comm, v *dass.View) (any, int64, pfs.Trace) {
				m, tr, err := params.PrepareStackedMasterFromView(v)
				if err != nil {
					panic(err)
				}
				return m, m.Bytes(), tr
			},
			UDF: func(s *arrayudf.Stencil, shared any) []float64 {
				return params.StackedUDF(shared.(*detect.StackedMaster))(s)
			},
		}, *out)
		if err != nil {
			fatalData(err)
		}
		fmt.Printf("stacked noise correlations: %d channels × %d lags over %d windows\n",
			rep.Output.Channels, rep.Output.Samples, params.NumWindows(nt))
	case "stalta":
		params := detect.STALTAParams{STASamples: *sta, LTASamples: *lta, Stride: *stride}
		if params.STASamples == 0 {
			params.STASamples = max(int(sampleRate/5), 2)
		}
		if params.LTASamples == 0 {
			params.LTASamples = max(int(4*sampleRate), params.STASamples+1)
		}
		if err := params.Validate(); err != nil {
			fatalUsage("%v", err)
		}
		rep, err = eng.RunPoints(v, haee.PointsWorkload{Spec: params.Spec(), UDF: params.UDF()}, *out)
		if err != nil {
			fatalData(err)
		}
		flat := rep.Output.Data
		fmt.Printf("STA/LTA map: %d channels × %d samples, max ratio %.2f\n",
			rep.Output.Channels, rep.Output.Samples, detect.MaxRatio(flat))
	default:
		fatalUsage("unknown -op %q (want localsimi, interferometry, stacked, or stalta)", *op)
	}

	fmt.Printf("engine: %s, %d node(s) × %d core(s)\n", engMode, *nodes, *cores)
	fmt.Printf("phases: read %v (exchange %v), compute %v, write %v (total %v)\n",
		rep.ReadTime.Round(time.Millisecond), rep.ExchangeTime.Round(time.Millisecond),
		rep.ComputeTime.Round(time.Millisecond),
		rep.WriteTime.Round(time.Millisecond), rep.Total().Round(time.Millisecond))
	fmt.Printf("breakdown: %s\n", rep.Phases.String())
	fmt.Printf("I/O: %d opens, %d read calls, %.1f MB read; est. memory/node %.1f MB\n",
		rep.ReadTrace.Opens, rep.ReadTrace.Reads, float64(rep.ReadTrace.BytesRead)/1e6,
		float64(rep.MemPerNode)/1e6)
	if tr := rep.ReadTrace; tr.Retries > 0 || tr.Faults > 0 || tr.SlowReads > 0 || tr.MaskedSamples > 0 {
		fmt.Printf("robustness: %d retries, %d faults, %d slow reads, %d masked samples\n",
			tr.Retries, tr.Faults, tr.SlowReads, tr.MaskedSamples)
	}
	if *out != "" {
		fmt.Printf("result written to %s\n", *out)
	}
	if rep.Quality.Degraded() {
		// Degraded-but-completed is still a success exit (0): the surviving
		// channels are valid and the report says exactly what is missing.
		fmt.Printf("WARNING: run degraded; %s\n", rep.Quality)
		for _, f := range rep.Quality.LostFiles {
			fmt.Printf("WARNING:   lost member: %s\n", f)
		}
	}
	printTrace(traceStore, traceRoot)
}

// printTrace ends the -trace root span and prints the recorded span tree.
// A nil store (no -trace) is a no-op.
func printTrace(store *trace.Store, root *trace.Span) {
	if store == nil {
		return
	}
	root.End()
	for _, td := range store.Recent() {
		fmt.Println()
		trace.WriteTree(os.Stdout, td)
	}
}
