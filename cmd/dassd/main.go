// Command dassd is DASSA's streaming ingest + query daemon: it watches a
// directory for newly recorded per-minute DASF files, keeps a live catalog
// (and optionally a rolling virtual concatenated array) over them, and
// serves an HTTP JSON API backed by the in-process analysis engines.
//
//	dassd -dir ./das-data -addr 127.0.0.1:8057
//
// Endpoints:
//
//	GET /search?e=170728224[567]10        files by timestamp regex
//	GET /search?s=170728224510&c=2        files by start + count
//	GET /read?start=...&end=...&ch0=0&ch1=8&t0=0&t1=500
//	GET /detect?op=localsimi|stalta&start=...&end=...
//	GET /status                           catalog, ingest, cache, admission
//	GET /status?file=<name>               das_info -json for one file
//	GET /metrics                          Prometheus text exposition
//	GET /healthz                          liveness (200 once serving)
//	GET /readyz                           readiness (503 until scanned + workers up)
//	GET /debug/pprof/                     profiling (only with -pprof)
//
// With -workers host:port,... the daemon fans /read and /detect out
// across dassw shard workers, re-dispatching or NaN-degrading shards
// lost to worker failure.
//
// Logs are structured (-log-level, -log-format); SIGINT/SIGTERM drain
// in-flight requests and exit 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dassa/internal/obs"
	"dassa/internal/serve"
)

// splitWorkers parses the -workers flag: comma-separated host:port
// addresses, empty entries dropped so a trailing comma is harmless.
func splitWorkers(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func main() {
	var (
		dir      = flag.String("dir", "./das-data", "watched directory for arriving DASF files")
		addr     = flag.String("addr", "127.0.0.1:8057", "HTTP listen address (host:port, port 0 picks one)")
		poll     = flag.Duration("poll", 2*time.Second, "ingest poll interval")
		retain   = flag.Int("retain", 0, "serve only the newest N files (0 = all)")
		liveVCA  = flag.Bool("live-vca", true, "maintain a rolling VCA ("+serve.LiveVCAName+") over the ingested series")
		cacheMB  = flag.Int64("cache-mb", 64, "block cache budget in MiB (0 disables)")
		inflight = flag.Int("max-inflight", 4, "queries executing concurrently")
		queue    = flag.Int("queue", 8, "queries waiting for a slot before new ones get 429")
		wait     = flag.Duration("queue-wait", 5*time.Second, "longest a queued query waits before 429")
		jobs     = flag.Int("jobs", 2, "concurrent /detect jobs")
		reqTO    = flag.Duration("request-timeout", 0, "per-request deadline covering queue wait, reads, and compute (0 = none)")
		quarN    = flag.Int("quarantine-after", 3, "consecutive failed scans before a file is quarantined (0 disables)")
		quarBO   = flag.Duration("quarantine-backoff", 0, "initial re-probe backoff for quarantined files (0 = 4x poll)")
		quarMax  = flag.Duration("quarantine-max-backoff", 5*time.Minute, "re-probe backoff ceiling")
		nodes    = flag.Int("nodes", 1, "simulated nodes for the analysis engine")
		cores    = flag.Int("cores", 4, "cores per node for the analysis engine")
		workers  = flag.String("workers", "", "comma-separated dassw addresses; /read and /detect fan out across them")
		pprofOn  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	newLogger := obs.LogFlags(nil)
	flag.Parse()

	logger, err := newLogger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dassd: %v\n", err)
		os.Exit(2)
	}

	if st, err := os.Stat(*dir); err != nil || !st.IsDir() {
		logger.Error("watched directory is not readable", "dir", *dir, "err", err)
		os.Exit(1)
	}

	// Metrics are also published as an expvar, so tooling that only speaks
	// /debug/vars (once pprof's mux side effects are mounted) finds them.
	obs.Default().PublishExpvar("dassa_metrics")

	s := serve.NewServer(serve.Config{
		Ingest: serve.IngestConfig{
			Dir:                  *dir,
			Poll:                 *poll,
			RetainFiles:          *retain,
			LiveVCA:              *liveVCA,
			QuarantineAfter:      *quarN,
			QuarantineBackoff:    *quarBO,
			QuarantineMaxBackoff: *quarMax,
			Log:                  logger,
		},
		CacheBytes:     *cacheMB << 20,
		MaxConcurrent:  *inflight,
		MaxQueue:       *queue,
		QueueWait:      *wait,
		DetectJobs:     *jobs,
		RequestTimeout: *reqTO,
		Nodes:          *nodes,
		CoresPerNode:   *cores,
		Workers:        splitWorkers(*workers),
		Log:            logger,
		EnablePprof:    *pprofOn,
	})
	defer s.Close()

	// Populate the catalog before accepting traffic, then poll.
	if err := s.Ingester().ScanOnce(); err != nil {
		logger.Error("initial scan failed", "err", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go s.Ingester().Run(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	// Printed on stdout so wrappers (and the e2e test) can discover the
	// port when -addr ends in :0.
	fmt.Printf("dassd: listening on %s (%d files cataloged)\n", ln.Addr(), s.Ingester().Catalog().Len())
	logger.Info("listening", "addr", ln.Addr().String(),
		"files", s.Ingester().Catalog().Len(), "pprof", *pprofOn)

	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logger.Info("signal received, draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown failed", "err", err)
		os.Exit(1)
	}
	logger.Info("shutdown complete")
}
