package clitest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServerDaemon drives dassd end to end: seed a series, start the
// daemon, query every endpoint, drop a new minute file into the watched
// directory and see it become searchable within a poll interval, observe a
// cache hit on a repeated read, and shut down cleanly on SIGTERM.
func TestServerDaemon(t *testing.T) {
	bins := binaries(t)
	watch := t.TempDir()
	stage := t.TempDir()

	// Stage 6 minute files; deliver 4 now, keep 2 for live arrival.
	run(t, "das_gen", "-dir", stage, "-channels", "12", "-rate", "50",
		"-seconds", "1", "-files", "6", "-events", "none")
	staged, err := filepath.Glob(filepath.Join(stage, "*.dasf"))
	if err != nil || len(staged) != 6 {
		t.Fatalf("staged files: %v %v", staged, err)
	}
	for _, p := range staged[:4] {
		deliver(t, watch, p)
	}

	cmd := exec.Command(filepath.Join(bins, "dassd"),
		"-dir", watch, "-addr", "127.0.0.1:0", "-poll", "150ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its bound address on stdout.
	var base string
	sc := bufio.NewScanner(stdout)
	re := regexp.MustCompile(`listening on (\S+)`)
	for sc.Scan() {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			base = "http://" + m[1]
			break
		}
	}
	if base == "" {
		t.Fatalf("dassd never reported its address")
	}
	//dassalint:ignore goleak drain ends at pipe EOF when the daemon process exits
	go func() { // drain the rest so the daemon never blocks on stdout
		for sc.Scan() {
		}
	}()

	get := func(path string, out any) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("GET %s: decode: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	// /search sees the seeded series.
	var sr struct {
		TotalFiles int `json:"total_files"`
		Matches    int `json:"matches"`
	}
	if code := get("/search", &sr); code != 200 || sr.TotalFiles != 4 {
		t.Fatalf("/search: code %d, %+v", code, sr)
	}

	// A new minute arrives; within a poll interval it is searchable.
	deliver(t, watch, staged[4])
	deadline := time.Now().Add(5 * time.Second)
	for sr.TotalFiles != 5 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		get("/search", &sr)
	}
	if sr.TotalFiles != 5 {
		t.Fatalf("new file never became searchable: %+v", sr)
	}

	// /read the same window twice: the repeat is served from cache.
	var rr struct {
		NumChannels int              `json:"num_channels"`
		NumSamples  int              `json:"num_samples"`
		IO          map[string]int64 `json:"io"`
	}
	window := "/read?ch0=0&ch1=8&t0=0&t1=100&data=0"
	if code := get(window, &rr); code != 200 || rr.NumChannels != 8 || rr.NumSamples != 100 {
		t.Fatalf("/read: code %d, %+v", code, rr)
	}
	get(window, &rr)
	if rr.IO["opens"] != 0 {
		t.Fatalf("repeated read did %d opens, want 0", rr.IO["opens"])
	}
	var status struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		Ingest struct {
			FilesIngested int64 `json:"files_ingested"`
			LagMS         int64 `json:"ingest_lag_ms"`
		} `json:"ingest"`
	}
	get("/status", &status)
	if status.Cache.Hits == 0 {
		t.Fatalf("repeated /read not visible in /status cache counters: %+v", status)
	}
	if status.Ingest.FilesIngested != 5 {
		t.Fatalf("ingest counters: %+v", status.Ingest)
	}

	// /detect runs a STA/LTA job on the in-process engine.
	var dr struct {
		Op string `json:"op"`
	}
	if code := get("/detect?op=stalta&sta=3&lta=25", &dr); code != 200 || dr.Op != "stalta" {
		t.Fatalf("/detect: code %d, %+v", code, dr)
	}

	// /metrics serves Prometheus text and the traffic above moved the
	// counters: requests by route, cache hits from the repeated read,
	// ingest lag from the live arrival.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil || mresp.StatusCode != 200 {
		t.Fatalf("/metrics: status %d, %v", mresp.StatusCode, err)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	metrics := string(mbody)
	for _, want := range []string{
		`dassa_http_requests_total{route="/read"} 2`,
		`dassa_http_requests_total{route="/detect"} 1`,
		"# TYPE dassa_http_request_seconds histogram",
		"# TYPE dassa_cache_hits_total counter",
		"dassa_ingest_lag_seconds",
		"dassa_catalog_files 5",
		"dassa_degraded_reads_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
	if strings.Contains(metrics, "dassa_cache_hits_total 0\n") {
		t.Error("repeated /read left dassa_cache_hits_total at 0")
	}

	// pprof stays off unless the daemon opted in with -pprof.
	if presp, err := http.Get(base + "/debug/pprof/cmdline"); err == nil {
		presp.Body.Close()
		if presp.StatusCode != 404 {
			t.Fatalf("pprof served without -pprof: status %d", presp.StatusCode)
		}
	}

	// /status?file= returns the das_info -json projection.
	var info struct {
		Kind        string `json:"kind"`
		NumChannels int    `json:"num_channels"`
	}
	if code := get("/status?file="+filepath.Base(staged[0]), &info); code != 200 ||
		info.Kind != "data" || info.NumChannels != 12 {
		t.Fatalf("/status?file=: code %d, %+v", code, info)
	}

	// SIGTERM: clean drain, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("dassd exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dassd did not exit within 10s of SIGTERM")
	}
}

// deliver copies a staged file into the watched directory the way a
// recorder does: temp name first, then rename into place.
func deliver(t *testing.T, dir, src string) {
	t.Helper()
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, filepath.Base(src))
	tmp := dst + ".part"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		t.Fatal(err)
	}
}

// TestServerOverloadSheds floods a tiny dassd with more concurrent reads
// than its admission gate allows and requires at least one 429 with
// Retry-After — and zero failures of any other kind.
func TestServerOverloadSheds(t *testing.T) {
	bins := binaries(t)
	watch := t.TempDir()
	run(t, "das_gen", "-dir", watch, "-channels", "16", "-rate", "100",
		"-seconds", "2", "-files", "4", "-events", "none")

	cmd := exec.Command(filepath.Join(bins, "dassd"),
		"-dir", watch, "-addr", "127.0.0.1:0", "-poll", "1s",
		"-max-inflight", "1", "-queue", "1", "-queue-wait", "100ms", "-pprof")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()

	var base string
	sc := bufio.NewScanner(stdout)
	re := regexp.MustCompile(`listening on (\S+)`)
	for sc.Scan() {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			base = "http://" + m[1]
			break
		}
	}
	if base == "" {
		t.Fatal("dassd never reported its address")
	}
	//dassalint:ignore goleak drain ends at pipe EOF when the daemon process exits
	go func() {
		for sc.Scan() {
		}
	}()

	const n = 12
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Get(base + "/read?data=0")
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			if resp.StatusCode == 429 && resp.Header.Get("Retry-After") == "" {
				codes <- -2
				return
			}
			codes <- resp.StatusCode
		}()
	}
	got := map[int]int{}
	for i := 0; i < n; i++ {
		got[<-codes]++
	}
	if got[-1] > 0 || got[-2] > 0 {
		t.Fatalf("transport errors or 429 without Retry-After: %v", got)
	}
	if got[200] == 0 {
		t.Fatalf("no request succeeded: %v", got)
	}
	if got[429] == 0 {
		t.Logf("note: no shedding observed (reads finished too fast): %v", got)
	}
	for code := range got {
		if code != 200 && code != 429 {
			t.Fatalf("unexpected status %d: %v", code, got)
		}
	}

	var status struct {
		Admission struct {
			Admitted int64 `json:"admitted"`
			Rejected int64 `json:"rejected"`
		} `json:"admission"`
	}
	resp, err := http.Get(base + "/status")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if status.Admission.Admitted == 0 {
		t.Fatalf("admission counters empty: %+v", status)
	}

	// /metrics answers during (and after) overload — it is mounted outside
	// the admission gate — and its shed counter agrees with /status.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil || mresp.StatusCode != 200 {
		t.Fatalf("/metrics during overload: status %d, %v", mresp.StatusCode, err)
	}
	want := fmt.Sprintf("dassa_http_sheds_total %d", status.Admission.Rejected)
	if !strings.Contains(string(mbody), want) {
		t.Errorf("/metrics lacks %q", want)
	}

	// -pprof was passed, so the profiling mux is live.
	presp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != 200 {
		t.Fatalf("-pprof set but /debug/pprof/cmdline gave %d", presp.StatusCode)
	}
}
