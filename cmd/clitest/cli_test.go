// Package clitest drives the command-line tools end to end: it builds the
// real binaries and runs the workflow a user would (generate → info →
// search/merge → analyze → bench), asserting on their output.
package clitest

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildOnce compiles all binaries into a shared temp dir.
var (
	buildMu  sync.Mutex
	binDir   string
	buildErr error
)

func binaries(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration in -short mode")
	}
	buildMu.Lock()
	defer buildMu.Unlock()
	if binDir != "" || buildErr != nil {
		if buildErr != nil {
			t.Fatal(buildErr)
		}
		return binDir
	}
	//dassalint:ignore lockio once-per-process binary build; the lock is the build singleflight
	dir, err := os.MkdirTemp("", "dassa-bin")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator),
		"dassa/cmd/das_gen", "dassa/cmd/das_search", "dassa/cmd/das_info",
		"dassa/cmd/das_analyze", "dassa/cmd/das_bench", "dassa/cmd/dassd",
		"dassa/cmd/dassw")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		buildErr = err
		t.Fatalf("go build: %v\n%s", err, out)
	}
	binDir = dir
	return binDir
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // cmd/clitest → repo root
}

func run(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIWorkflow(t *testing.T) {
	data := t.TempDir()

	// Generate a small acquisition.
	out := run(t, "das_gen", "-dir", data, "-channels", "16", "-rate", "50",
		"-seconds", "2", "-files", "6", "-events", "fig10")
	if !strings.Contains(out, "wrote 6 files") {
		t.Fatalf("das_gen output: %s", out)
	}

	// Inspect one file.
	files, err := filepath.Glob(filepath.Join(data, "*.dasf"))
	if err != nil || len(files) != 6 {
		t.Fatalf("generated files: %v %v", files, err)
	}
	out = run(t, "das_info", files[0])
	for _, want := range []string{"kind: data", "16 channels", "SamplingFrequency(HZ) : 50"} {
		if !strings.Contains(out, want) {
			t.Errorf("das_info missing %q in:\n%s", want, out)
		}
	}

	// The same metadata as JSON (the dassd /status?file= shape).
	out = run(t, "das_info", "-json", files[0])
	var infoDoc struct {
		Kind        string         `json:"kind"`
		NumChannels int            `json:"num_channels"`
		Global      map[string]any `json:"global"`
	}
	if err := json.Unmarshal([]byte(out), &infoDoc); err != nil {
		t.Fatalf("das_info -json: %v\n%s", err, out)
	}
	if infoDoc.Kind != "data" || infoDoc.NumChannels != 16 {
		t.Errorf("das_info -json content: %+v", infoDoc)
	}
	if rate, ok := infoDoc.Global["SamplingFrequency(HZ)"].(float64); !ok || rate != 50 {
		t.Errorf("das_info -json global rate: %v", infoDoc.Global)
	}

	// Search + merge into a VCA.
	vca := filepath.Join(t.TempDir(), "merged.dasf")
	out = run(t, "das_search", "-dir", data, "-s", "170620100545", "-c", "4", "-vca", vca)
	if !strings.Contains(out, "4 match") || !strings.Contains(out, "created VCA") {
		t.Fatalf("das_search output: %s", out)
	}
	// Second search hits the index cache (0 header reads).
	out = run(t, "das_search", "-dir", data)
	if !strings.Contains(out, "(0 header reads") {
		t.Errorf("warm search should use the index: %s", out)
	}

	out = run(t, "das_info", vca)
	if !strings.Contains(out, "kind: vca") || !strings.Contains(out, "members (4)") {
		t.Errorf("das_info on VCA:\n%s", out)
	}

	// Analyze: local similarity over the VCA.
	simOut := filepath.Join(t.TempDir(), "sim.dasf")
	out = run(t, "das_analyze", "-in", vca, "-op", "localsimi",
		"-nodes", "2", "-cores", "2", "-M", "10", "-stride", "5", "-out", simOut)
	if !strings.Contains(out, "detected") || !strings.Contains(out, "phases:") {
		t.Fatalf("das_analyze output: %s", out)
	}
	if _, err := os.Stat(simOut); err != nil {
		t.Errorf("similarity map not written: %v", err)
	}

	// Analyze: interferometry in pure-MPI mode.
	out = run(t, "das_analyze", "-in", vca, "-op", "interferometry",
		"-mode", "mpi", "-nodes", "1", "-cores", "2", "-maxlag", "20")
	if !strings.Contains(out, "noise correlations") {
		t.Fatalf("interferometry output: %s", out)
	}

	// Analyze: windowed+stacked interferometry.
	out = run(t, "das_analyze", "-in", vca, "-op", "stacked",
		"-nodes", "1", "-cores", "2", "-maxlag", "15", "-window", "100")
	if !strings.Contains(out, "stacked noise correlations") || !strings.Contains(out, "windows") {
		t.Fatalf("stacked output: %s", out)
	}

	// Analyze: the STA/LTA baseline trigger.
	out = run(t, "das_analyze", "-in", vca, "-op", "stalta", "-nodes", "1", "-cores", "2")
	if !strings.Contains(out, "STA/LTA map") || !strings.Contains(out, "max ratio") {
		t.Fatalf("stalta output: %s", out)
	}
}

func TestCLIBenchSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	out := run(t, "das_bench", "-exp", "table1", "-dir", dir,
		"-channels", "16", "-files", "4", "-rate", "50", "-seconds", "1")
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "VCA") {
		t.Fatalf("das_bench output: %s", out)
	}

	// Machine-readable results land in the -json file.
	jsonPath := filepath.Join(t.TempDir(), "results.json")
	run(t, "das_bench", "-exp", "table1", "-dir", dir,
		"-channels", "16", "-files", "4", "-rate", "50", "-seconds", "1",
		"-json", jsonPath)
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Suite  string `json:"suite"`
		Params struct {
			Channels int `json:"channels"`
		} `json:"params"`
		Experiments []struct {
			Name string `json:"name"`
			Rows any    `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("das_bench -json: %v\n%s", err, raw)
	}
	if rep.Suite != "dassa-bench" || rep.Params.Channels != 16 ||
		len(rep.Experiments) != 1 || rep.Experiments[0].Name != "table1" ||
		rep.Experiments[0].Rows == nil {
		t.Fatalf("das_bench -json content: %+v", rep)
	}
}
