package clitest

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon launches one of the daemons (dassw/dassd) and returns the
// running command plus the address it printed on stdout. Stdout keeps
// draining in the background so the process never blocks on the pipe.
func startDaemon(t *testing.T, name string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill() })

	var addr string
	sc := bufio.NewScanner(stdout)
	re := regexp.MustCompile(`listening on (\S+)`)
	for sc.Scan() {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("%s never reported its address", name)
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return cmd, addr
}

// terminate sends SIGTERM and requires a clean exit within the deadline.
func terminate(t *testing.T, name string, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s exited uncleanly after SIGTERM: %v", name, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("%s did not exit within 10s of SIGTERM", name)
	}
}

// TestClusterDaemons is the multi-process smoke test of the distributed
// subsystem: two dassw shard workers plus a dassd coordinator, a
// distributed /detect, one worker SIGKILLed while detect traffic is in
// flight (the cluster must answer every request — re-dispatched or
// NaN-degraded, never an error), and clean drains for the survivors.
func TestClusterDaemons(t *testing.T) {
	watch := t.TempDir()
	run(t, "das_gen", "-dir", watch, "-channels", "48", "-rate", "100",
		"-seconds", "2", "-files", "4", "-events", "fig10")

	w1, a1 := startDaemon(t, "dassw", "-addr", "127.0.0.1:0")
	w2, a2 := startDaemon(t, "dassw", "-addr", "127.0.0.1:0")
	dd, daddr := startDaemon(t, "dassd",
		"-dir", watch, "-addr", "127.0.0.1:0", "-poll", "1s",
		"-workers", a1+","+a2)
	base := "http://" + daddr

	get := func(path string, out any) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("GET %s: decode: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	// Readiness requires the catalog scan AND a live worker heartbeat.
	deadline := time.Now().Add(10 * time.Second)
	for get("/readyz", nil) != 200 {
		if time.Now().After(deadline) {
			t.Fatal("/readyz never turned 200 with two live workers")
		}
		time.Sleep(100 * time.Millisecond)
	}

	type detectResp struct {
		Op          string `json:"op"`
		Distributed bool   `json:"distributed"`
		Degraded    bool   `json:"degraded"`
	}
	var dr detectResp
	if code := get("/detect?op=localsimi", &dr); code != 200 || !dr.Distributed || dr.Degraded {
		t.Fatalf("healthy distributed detect: code %d, %+v", code, dr)
	}

	// Hammer /detect while one worker dies mid-stream. Every response
	// must be a 200: a lost shard is either re-dispatched to the healthy
	// worker or NaN-degraded into the quality report, never an error.
	codes := make(chan int, 8)
	go func() {
		for i := 0; i < 8; i++ {
			resp, err := http.Get(base + "/detect?op=localsimi")
			if err != nil {
				codes <- -1
				continue
			}
			_ = resp.Body.Close()
			codes <- resp.StatusCode
		}
	}()
	time.Sleep(150 * time.Millisecond)
	if err := w1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = w1.Process.Wait()
	for i := 0; i < 8; i++ {
		if code := <-codes; code != 200 {
			t.Fatalf("detect #%d during worker death: code %d, want 200", i, code)
		}
	}

	// With one worker down the cluster stays ready and distributed.
	if code := get("/readyz", nil); code != 200 {
		t.Fatalf("/readyz after worker death: %d, want 200", code)
	}
	dr = detectResp{}
	if code := get("/detect?op=stalta", &dr); code != 200 || !dr.Distributed {
		t.Fatalf("post-death distributed detect: code %d, %+v", code, dr)
	}

	// das_analyze -workers drives the same pool directly.
	files, err := filepath.Glob(filepath.Join(watch, "*.dasf"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no generated files: %v %v", files, err)
	}
	out := run(t, "das_analyze", "-in", files[0], "-op", "stalta", "-workers", a2)
	if !strings.Contains(out, "cluster: 1 worker(s)") || !strings.Contains(out, "STA/LTA map") {
		t.Fatalf("das_analyze -workers output:\n%s", out)
	}

	// Survivors drain cleanly on SIGTERM.
	terminate(t, "dassd", dd)
	terminate(t, "dassw", w2)
}
