package clitest

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon launches one of the daemons (dassw/dassd) and returns the
// running command, the address it printed on stdout, and the file its
// stderr (the structured log) is captured into — tests grep it for
// trace_id correlation. Stdout keeps draining in the background so the
// process never blocks on the pipe.
func startDaemon(t *testing.T, name string, args ...string) (*exec.Cmd, string, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	logFile, err := os.CreateTemp(t.TempDir(), name+"-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = logFile.Close()
	})

	var addr string
	sc := bufio.NewScanner(stdout)
	re := regexp.MustCompile(`listening on (\S+)`)
	for sc.Scan() {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("%s never reported its address", name)
	}
	//dassalint:ignore goleak drain ends at pipe EOF when the daemon process exits
	go func() {
		for sc.Scan() {
		}
	}()
	return cmd, addr, logFile.Name()
}

// terminate sends SIGTERM and requires a clean exit within the deadline.
func terminate(t *testing.T, name string, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s exited uncleanly after SIGTERM: %v", name, err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("%s did not exit within 10s of SIGTERM", name)
	}
}

// TestClusterDaemons is the multi-process smoke test of the distributed
// subsystem: two dassw shard workers plus a dassd coordinator, a
// distributed /detect, one worker SIGKILLed while detect traffic is in
// flight (the cluster must answer every request — re-dispatched or
// NaN-degraded, never an error), and clean drains for the survivors.
func TestClusterDaemons(t *testing.T) {
	watch := t.TempDir()
	run(t, "das_gen", "-dir", watch, "-channels", "48", "-rate", "100",
		"-seconds", "2", "-files", "4", "-events", "fig10")

	// The victim's storage reads are slowed so detect shards are reliably
	// still in flight on it when the kill lands mid-hammer.
	w1, a1, _ := startDaemon(t, "dassw", "-addr", "127.0.0.1:0", "-name", "victim",
		"-inject", "seed=3,slowp=1,slowlat=60ms")
	w2, a2, w2log := startDaemon(t, "dassw", "-addr", "127.0.0.1:0", "-name", "survivor")
	dd, daddr, ddlog := startDaemon(t, "dassd",
		"-dir", watch, "-addr", "127.0.0.1:0", "-poll", "1s",
		"-workers", a1+","+a2)
	base := "http://" + daddr

	get := func(path string, out any) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("GET %s: decode: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	// Readiness requires the catalog scan AND a live worker heartbeat.
	deadline := time.Now().Add(10 * time.Second)
	for get("/readyz", nil) != 200 {
		if time.Now().After(deadline) {
			t.Fatal("/readyz never turned 200 with two live workers")
		}
		time.Sleep(100 * time.Millisecond)
	}

	type detectResp struct {
		Op          string `json:"op"`
		Distributed bool   `json:"distributed"`
		Degraded    bool   `json:"degraded"`
	}
	// traceDoc mirrors the /debug/traces/{id} payload closely enough to
	// walk the span tree.
	type traceDoc struct {
		TraceID string `json:"trace_id"`
		Root    string `json:"root"`
		Spans   []struct {
			Name    string `json:"name"`
			Process string `json:"process"`
			Status  string `json:"status"`
			Attrs   []struct {
				K string `json:"k"`
				V string `json:"v"`
			} `json:"attrs"`
		} `json:"spans"`
	}
	getTrace := func(id string) (traceDoc, int) {
		var td traceDoc
		resp, err := http.Get(base + "/debug/traces/" + id)
		if err != nil {
			t.Fatalf("GET /debug/traces/%s: %v", id, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == 200 {
			if err := json.NewDecoder(resp.Body).Decode(&td); err != nil {
				t.Fatalf("trace %s: decode: %v", id, err)
			}
		}
		return td, resp.StatusCode
	}

	var dr detectResp
	resp, err := http.Get(base + "/detect?op=localsimi")
	if err != nil {
		t.Fatal(err)
	}
	healthyID := resp.Header.Get("X-Dassa-Trace")
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || !dr.Distributed || dr.Degraded {
		t.Fatalf("healthy distributed detect: code %d, %+v", resp.StatusCode, dr)
	}

	// The healthy detect must be retrievable as ONE reassembled trace with
	// coordinator dispatch spans and worker-side shard spans from both
	// worker processes.
	if healthyID == "" {
		t.Fatal("detect response carries no X-Dassa-Trace header")
	}
	td, code := getTrace(healthyID)
	if code != 200 {
		t.Fatalf("/debug/traces/%s: code %d", healthyID, code)
	}
	if td.Root != "http /detect" {
		t.Fatalf("trace root %q, want \"http /detect\"", td.Root)
	}
	procs := map[string]bool{}
	var dispatches int
	for _, sp := range td.Spans {
		if sp.Name == "worker.shard" {
			procs[sp.Process] = true
		}
		if sp.Name == "cluster.dispatch" {
			dispatches++
		}
	}
	if dispatches == 0 {
		t.Fatal("healthy detect trace has no cluster.dispatch spans")
	}
	if !procs["victim"] || !procs["survivor"] {
		t.Fatalf("healthy detect trace missing worker-side spans: have processes %v", procs)
	}

	// The same trace id must correlate the dassd access log with the
	// worker's shard log — grep both stderr captures.
	grepLog := func(path, want string) bool {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return strings.Contains(string(raw), want)
	}
	if !grepLog(ddlog, healthyID) {
		t.Errorf("trace id %s not in dassd log %s", healthyID, ddlog)
	}
	if !grepLog(w2log, healthyID) {
		t.Errorf("trace id %s not in dassw (survivor) log %s", healthyID, w2log)
	}

	// Hammer /detect while one worker dies mid-stream. Every response
	// must be a 200: a lost shard is either re-dispatched to the healthy
	// worker or NaN-degraded into the quality report, never an error.
	type hammered struct {
		code    int
		traceID string
	}
	codes := make(chan hammered, 8)
	go func() {
		for i := 0; i < 8; i++ {
			resp, err := http.Get(base + "/detect?op=localsimi")
			if err != nil {
				codes <- hammered{code: -1}
				continue
			}
			_ = resp.Body.Close()
			codes <- hammered{resp.StatusCode, resp.Header.Get("X-Dassa-Trace")}
		}
	}()
	time.Sleep(150 * time.Millisecond)
	if err := w1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = w1.Process.Wait()
	var hammerIDs []string
	for i := 0; i < 8; i++ {
		h := <-codes
		if h.code != 200 {
			t.Fatalf("detect #%d during worker death: code %d, want 200", i, h.code)
		}
		hammerIDs = append(hammerIDs, h.traceID)
	}

	// Scrape the traces of the hammered requests: at least one must tell
	// the worker-death story — a dispatch that failed, then either a
	// redispatch-marked retry or a NaN-degrade decision, all in one trace.
	var sawFailure, sawRecovery bool
	for _, id := range hammerIDs {
		td, code := getTrace(id)
		if code != 200 {
			continue // evicted under churn; the others cover it
		}
		for _, sp := range td.Spans {
			if sp.Name == "cluster.dispatch" && sp.Status != "" && sp.Status != "ok" {
				sawFailure = true
			}
			attrs := map[string]string{}
			for _, a := range sp.Attrs {
				attrs[a.K] = a.V
			}
			if sp.Name == "cluster.dispatch" && attrs["redispatch"] == "true" {
				sawRecovery = true
			}
			if sp.Name == "cluster.degrade" {
				sawRecovery = true
			}
		}
	}
	if !sawFailure || !sawRecovery {
		t.Errorf("worker-death traces show failure=%v recovery=%v; "+
			"want a failed dispatch plus a redispatch or degrade span", sawFailure, sawRecovery)
	}

	// With one worker down the cluster stays ready and distributed.
	if code := get("/readyz", nil); code != 200 {
		t.Fatalf("/readyz after worker death: %d, want 200", code)
	}
	dr = detectResp{}
	if code := get("/detect?op=stalta", &dr); code != 200 || !dr.Distributed {
		t.Fatalf("post-death distributed detect: code %d, %+v", code, dr)
	}

	// das_analyze -workers drives the same pool directly.
	files, err := filepath.Glob(filepath.Join(watch, "*.dasf"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no generated files: %v %v", files, err)
	}
	out := run(t, "das_analyze", "-in", files[0], "-op", "stalta", "-workers", a2, "-trace")
	if !strings.Contains(out, "cluster: 1 worker(s)") || !strings.Contains(out, "STA/LTA map") {
		t.Fatalf("das_analyze -workers output:\n%s", out)
	}
	// -trace prints the reassembled span tree, worker-side spans included.
	for _, want := range []string{"trace ", "cluster.dispatch", "worker.shard", "@survivor"} {
		if !strings.Contains(out, want) {
			t.Errorf("das_analyze -trace output missing %q:\n%s", want, out)
		}
	}

	// Survivors drain cleanly on SIGTERM.
	terminate(t, "dassd", dd)
	terminate(t, "dassw", w2)
}
