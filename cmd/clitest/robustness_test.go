package clitest

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runCode runs a tool and returns its combined output and exit code,
// failing only if the process could not be started at all.
func runCode(t *testing.T, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		var ee *exec.ExitError
		if ok := asExitError(err, &ee); !ok {
			t.Fatalf("%s %v did not run: %v\n%s", name, args, err, out)
		}
		return string(out), ee.ExitCode()
	}
	return string(out), 0
}

func asExitError(err error, target **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}

// chaosVCA generates a small acquisition and merges it into a VCA, returning
// the VCA path and the base name of one member file.
func chaosVCA(t *testing.T) (string, string) {
	t.Helper()
	data := t.TempDir()
	run(t, "das_gen", "-dir", data, "-channels", "12", "-rate", "50",
		"-seconds", "2", "-files", "4", "-events", "fig10")
	files, err := filepath.Glob(filepath.Join(data, "westSac_*.dasf"))
	if err != nil || len(files) != 4 {
		t.Fatalf("generated files: %v %v", files, err)
	}
	vca := filepath.Join(data, "merged.dasf")
	run(t, "das_search", "-dir", data, "-vca", vca)
	return vca, filepath.Base(files[2])
}

// TestCLIExitCodes pins the documented contract: usage errors exit 2, data
// errors exit 1, degraded-but-completed runs exit 0 with a warning line.
func TestCLIExitCodes(t *testing.T) {
	vca, _ := chaosVCA(t)

	usage := [][]string{
		{"das_analyze"}, // missing -in
		{"das_analyze", "-in", vca, "-op", "nonsense"},             // unknown op
		{"das_analyze", "-in", vca, "-mode", "serial"},             // unknown mode
		{"das_analyze", "-in", vca, "-read", "psychic"},            // unknown read strategy
		{"das_analyze", "-in", vca, "-fail-policy", "x"},           // unknown policy
		{"das_analyze", "-in", vca, "-inject", "wat"},              // bad injection spec
		{"das_analyze", "-in", vca, "-retries", "-2"},              // negative retries
		{"das_analyze", "-in", vca, "-op", "localsimi", "-M", "0"}, // bad params
		{"das_search", "-dir", t.TempDir(), "-e", "("},             // regex does not compile
	}
	for _, args := range usage {
		if out, code := runCode(t, args[0], args[1:]...); code != 2 {
			t.Errorf("%v exited %d, want 2 (usage)\n%s", args, code, out)
		}
	}

	data := [][]string{
		{"das_analyze", "-in", filepath.Join(t.TempDir(), "no_such.dasf")},
		{"das_search", "-dir", filepath.Join(t.TempDir(), "no_such_dir")},
	}
	for _, args := range data {
		if out, code := runCode(t, args[0], args[1:]...); code != 1 {
			t.Errorf("%v exited %d, want 1 (data)\n%s", args, code, out)
		}
	}
}

// TestCLIDegradedRun injects a permanently missing member: under the default
// abort policy the run must fail (exit 1); under -fail-policy degrade it must
// complete with exit 0, a WARNING naming the lost file, and the robustness
// counters on the trace line.
func TestCLIDegradedRun(t *testing.T) {
	vca, lost := chaosVCA(t)
	common := []string{"-in", vca, "-op", "localsimi", "-M", "10", "-stride", "5",
		"-nodes", "2", "-cores", "2", "-inject", "missing=" + lost}

	out, code := runCode(t, "das_analyze", common...)
	if code != 1 {
		t.Errorf("abort policy with missing member exited %d, want 1\n%s", code, out)
	}

	out, code = runCode(t, "das_analyze", append(common, "-fail-policy", "degrade")...)
	if code != 0 {
		t.Fatalf("degrade policy exited %d, want 0\n%s", code, out)
	}
	for _, want := range []string{"WARNING", "DEGRADED", lost, "masked samples", "detected"} {
		if !strings.Contains(out, want) {
			t.Errorf("degraded run output missing %q:\n%s", want, out)
		}
	}
}

// TestCLITransientRetries injects transient faults on every file and checks
// -retries rides them out: exit 0, no warning, retries visible on the
// robustness line.
func TestCLITransientRetries(t *testing.T) {
	vca, _ := chaosVCA(t)
	out, code := runCode(t, "das_analyze", "-in", vca, "-op", "localsimi",
		"-M", "10", "-stride", "5", "-nodes", "2", "-cores", "2",
		"-inject", "seed=3,transient=0.9,max=3", "-retries", "3")
	if code != 0 {
		t.Fatalf("retried run exited %d\n%s", code, out)
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("transient-only run warned:\n%s", out)
	}
	if m := regexp.MustCompile(`robustness: (\d+) retries`).FindStringSubmatch(out); m == nil || m[1] == "0" {
		t.Errorf("no retries surfaced on the robustness line:\n%s", out)
	}
}
