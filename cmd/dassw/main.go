// Command dassw is DASSA's shard worker daemon: it serves shard requests
// from a cluster coordinator (dassd -workers or das_analyze -workers) by
// running the storage/analysis pipeline over its assigned slice of the
// shared file set.
//
//	dassw -addr 127.0.0.1:9057
//
// The worker speaks the length-prefixed wire protocol: Hello/Welcome
// handshake, heartbeats every -heartbeat, shard requests carrying absolute
// deadlines, and cancel frames that poison in-flight shards. File paths in
// requests are absolute — the worker must see the same filesystem as the
// coordinator (the paper's parallel-FS model).
//
// SIGINT/SIGTERM drain: the listener closes, new shards are refused,
// in-flight shards get -drain-timeout to finish and flush their results,
// then the process exits 0.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dassa/internal/cluster"
	"dassa/internal/dasf"
	"dassa/internal/faults"
	"dassa/internal/obs"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:9057", "listen address (host:port, port 0 picks one)")
		name    = flag.String("name", "", "worker name in handshakes and logs (default the listen address)")
		cores   = flag.Int("cores", 4, "per-shard compute parallelism")
		beat    = flag.Duration("heartbeat", time.Second, "liveness beacon period")
		drainTO = flag.Duration("drain-timeout", 10*time.Second, "longest a drain waits for in-flight shards")
		inject  = flag.String("inject", "", "storage fault injection spec (same grammar as das_analyze -inject)")
	)
	newLogger := obs.LogFlags(nil)
	flag.Parse()

	logger, err := newLogger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dassw: %v\n", err)
		os.Exit(2)
	}
	if *inject != "" {
		cfg, err := faults.ParseSpec(*inject)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dassw: %v\n", err)
			os.Exit(2)
		}
		dasf.SetInjector(faults.New(cfg))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	w := cluster.NewWorker(cluster.WorkerConfig{
		Name:           *name,
		Cores:          *cores,
		HeartbeatEvery: *beat,
		DrainTimeout:   *drainTO,
		Log:            logger,
	})
	// Printed on stdout so wrappers (and the e2e test) can discover the
	// port when -addr ends in :0.
	fmt.Printf("dassw: listening on %s\n", ln.Addr())
	logger.Info("listening", "addr", ln.Addr().String(), "cores", *cores)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- w.Serve(ln) }()

	select {
	case err := <-errc:
		logger.Error("worker failed", "err", err)
		os.Exit(1)
	case s := <-sig:
		logger.Info("signal received, draining", "signal", s.String())
	}
	w.Drain()
	logger.Info("drain complete")
}
