// Command das_bench regenerates the DASSA paper's evaluation tables and
// figures (§VI) at laptop scale. Each experiment runs the real storage and
// analysis code, prints measured wall times and operation counts, and
// projects the operation traces onto a Cori-like hardware model so the
// paper-scale shapes are visible. See EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Examples:
//
//	das_bench                      # run everything
//	das_bench -exp fig7            # just the Figure 7 read comparison
//	das_bench -channels 256 -files 48 -exp fig8
package main

import (
	"flag"
	"log"

	"dassa/internal/bench"
	"dassa/internal/pfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("das_bench: ")
	o := bench.Defaults()
	var (
		exp   = flag.String("exp", "all", "experiment: all | table1 | table2 | fig6 | fig7 | fig8 | fig9 | fig10 | fig11 | ablation | detectors")
		model = flag.String("model", "cori", "hardware model for projections: cori | burstbuffer")
	)
	flag.StringVar(&o.DataDir, "dir", o.DataDir, "working directory for the generated dataset")
	flag.IntVar(&o.Channels, "channels", o.Channels, "synthetic fiber channels")
	flag.IntVar(&o.Files, "files", o.Files, "synthetic file count")
	flag.Float64Var(&o.SampleRate, "rate", o.SampleRate, "sampling rate (Hz)")
	flag.Float64Var(&o.FileSeconds, "seconds", o.FileSeconds, "seconds per file")
	flag.Int64Var(&o.Seed, "seed", o.Seed, "random seed")
	flag.IntVar(&o.Ranks, "ranks", o.Ranks, "processes for read experiments")
	flag.IntVar(&o.Nodes, "nodes", o.Nodes, "max node count for sweeps")
	flag.IntVar(&o.CoresPerNode, "cores", o.CoresPerNode, "cores per node")
	flag.Parse()

	switch *model {
	case "cori":
		o.Model = pfs.CoriLike()
	case "burstbuffer":
		o.Model = pfs.BurstBufferLike()
	default:
		log.Fatalf("unknown -model %q", *model)
	}

	var err error
	switch *exp {
	case "all":
		err = bench.RunAll(o)
	case "table1":
		_, err = bench.RunTable1(o)
	case "table2":
		_, err = bench.RunTable2(o)
	case "fig6":
		_, err = bench.RunFig6(o)
	case "fig7":
		_, err = bench.RunFig7(o)
	case "fig8":
		_, err = bench.RunFig8(o)
	case "fig9":
		_, err = bench.RunFig9(o)
	case "fig10":
		_, err = bench.RunFig10(o)
	case "fig11":
		_, err = bench.RunFig11(o)
	case "ablation":
		_, err = bench.RunAblations(o)
	case "detectors":
		_, err = bench.RunDetectors(o)
	default:
		log.Fatalf("unknown -exp %q", *exp)
	}
	if err != nil {
		log.Fatal(err)
	}
}
