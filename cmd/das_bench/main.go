// Command das_bench regenerates the DASSA paper's evaluation tables and
// figures (§VI) at laptop scale. Each experiment runs the real storage and
// analysis code, prints measured wall times and operation counts, and
// projects the operation traces onto a Cori-like hardware model so the
// paper-scale shapes are visible. See EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Examples:
//
//	das_bench                      # run everything
//	das_bench -exp fig7            # just the Figure 7 read comparison
//	das_bench -channels 256 -files 48 -exp fig8
//	das_bench -exp table1 -json results.json   # machine-readable results
//	das_bench -json -                          # whole suite as JSON on stdout
package main

import (
	"flag"
	"io"
	"log"
	"os"

	"dassa/internal/bench"
	"dassa/internal/pfs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("das_bench: ")
	o := bench.Defaults()
	var (
		exp      = flag.String("exp", "all", "experiment: all | table1 | table2 | kernels | fig6 | fig7 | fig8 | fig9 | fig10 | fig11 | ablation | detectors | cluster")
		model    = flag.String("model", "cori", "hardware model for projections: cori | burstbuffer")
		jsonPath = flag.String("json", "", "also write machine-readable results to this file (- for stdout)")
	)
	flag.StringVar(&o.DataDir, "dir", o.DataDir, "working directory for the generated dataset")
	flag.IntVar(&o.Channels, "channels", o.Channels, "synthetic fiber channels")
	flag.IntVar(&o.Files, "files", o.Files, "synthetic file count")
	flag.Float64Var(&o.SampleRate, "rate", o.SampleRate, "sampling rate (Hz)")
	flag.Float64Var(&o.FileSeconds, "seconds", o.FileSeconds, "seconds per file")
	flag.Int64Var(&o.Seed, "seed", o.Seed, "random seed")
	flag.IntVar(&o.Ranks, "ranks", o.Ranks, "processes for read experiments")
	flag.IntVar(&o.Nodes, "nodes", o.Nodes, "max node count for sweeps")
	flag.IntVar(&o.CoresPerNode, "cores", o.CoresPerNode, "cores per node")
	flag.Parse()

	switch *model {
	case "cori":
		o.Model = pfs.CoriLike()
	case "burstbuffer":
		o.Model = pfs.BurstBufferLike()
	default:
		log.Fatalf("unknown -model %q", *model)
	}
	if _, ok := bench.Lookup(*exp); !ok && *exp != "all" {
		log.Fatalf("unknown -exp %q", *exp)
	}

	if *jsonPath != "" {
		// JSON mode: when the document goes to stdout, the text tables
		// must not — they would corrupt the stream.
		var out io.Writer = os.Stdout
		closeOut := func() error { return nil }
		if *jsonPath == "-" {
			o.Out = io.Discard
		} else {
			f, err := os.Create(*jsonPath)
			if err != nil {
				log.Fatal(err)
			}
			// Close is checked after the write: a deferred unchecked Close
			// would drop the one error that says the report never landed.
			closeOut = f.Close
			out = f
		}
		rep, err := bench.RunJSON(o, *exp)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteJSON(out); err != nil {
			log.Fatal(err)
		}
		if err := closeOut(); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *exp == "all" {
		if err := bench.RunAll(o); err != nil {
			log.Fatal(err)
		}
		return
	}
	e, _ := bench.Lookup(*exp)
	if _, err := e.Run(o); err != nil {
		log.Fatal(err)
	}
}
