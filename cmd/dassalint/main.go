// dassalint runs DASSA's project-invariant static analyzers over Go
// package patterns and reports violations in the familiar
// file:line:col: message [analyzer] shape.
//
//	go run ./cmd/dassalint ./...            # whole repo (what CI runs)
//	go run ./cmd/dassalint -only lockio ./internal/serve
//	go run ./cmd/dassalint -list
//
// Exit codes: 0 clean, 1 findings, 2 usage/load failure. Individual
// findings can be suppressed — with a reason — by an inline comment on
// the flagged line or the line above:
//
//	//dassalint:ignore lockio scan mutex is not on any request path
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dassa/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and the invariants they encode")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dassalint [-list] [-only a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var onlyList []string
	if *only != "" {
		onlyList = strings.Split(*only, ",")
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dassalint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(wd, patterns, onlyList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dassalint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dassalint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
