// dassalint runs DASSA's project-invariant static analyzers over Go
// package patterns and reports violations in the familiar
// file:line:col: message [analyzer] shape.
//
//	go run ./cmd/dassalint ./...            # whole repo incl. _test.go (what CI runs)
//	go run ./cmd/dassalint -only lockio ./internal/serve
//	go run ./cmd/dassalint -json ./...      # one JSON object per finding
//	go run ./cmd/dassalint -tests=false ./... # skip test variants
//	go run ./cmd/dassalint -list
//
// Exit codes: 0 clean, 1 findings, 2 usage/load failure — the contract
// is the same in -json mode. Individual findings can be suppressed —
// with a reason — by an inline comment on the flagged line or the line
// above:
//
//	//dassalint:ignore lockio scan mutex is not on any request path
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dassa/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and the invariants they encode")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonFlag := flag.Bool("json", false, "emit findings as JSON objects, one per line (file/line/col/analyzer/message)")
	tests := flag.Bool("tests", true, "lint _test.go files via per-package test variants")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dassalint [-list] [-only a,b] [-json] [-tests=false] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var onlyList []string
	if *only != "" {
		onlyList = strings.Split(*only, ",")
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dassalint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(wd, patterns, onlyList, lint.Options{IncludeTests: *tests})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dassalint:", err)
		os.Exit(2)
	}
	if *jsonFlag {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "dassalint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dassalint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
