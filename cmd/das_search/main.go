// Command das_search is the paper's §IV.A search tool: it finds DAS data
// files by timestamp or regular expression and optionally merges the result
// into a virtually (VCA) or really (RCA) concatenated array.
//
// The two query types from the paper:
//
//	das_search -dir ./data -s 170728224510 -c 2
//	das_search -dir ./data -e '170728224[567]10'
//
// Add -vca out.dasf or -rca out.dasf to merge the matches.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dassa/internal/dass"
)

// Exit codes mirror das_analyze: 1 = data error (unreadable directory or
// member, failed merge), 2 = usage error (bad flags, bad regex).
const (
	exitData  = 1
	exitUsage = 2
)

func fatalUsage(format string, args ...any) {
	log.Printf(format, args...)
	os.Exit(exitUsage)
}

func fatalData(v ...any) {
	log.Print(v...)
	os.Exit(exitData)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("das_search: ")
	var (
		dir   = flag.String("dir", ".", "directory holding DASF files")
		start = flag.Int64("s", 0, "start timestamp (yymmddhhmmss) for a range query")
		count = flag.Int("c", 0, "number of files after -s")
		expr  = flag.String("e", "", "regular expression over the 12-digit timestamp")
		vca   = flag.String("vca", "", "merge matches into a virtual concatenated array at this path")
		rca   = flag.String("rca", "", "merge matches into a real concatenated array at this path")
	)
	flag.Parse()

	if *start < 0 || *count < 0 {
		fatalUsage("-s and -c must be non-negative")
	}

	t0 := time.Now()
	cat, err := dass.ScanDirCached(*dir)
	if err != nil {
		fatalData(err)
	}
	scanTime := time.Since(t0)

	var matches []dass.Entry
	t0 = time.Now()
	switch {
	case *expr != "":
		matches, err = cat.SearchRegex(*expr)
		if err != nil {
			// A regex that does not compile is the caller's mistake.
			fatalUsage("%v", err)
		}
	case *start != 0 && *count > 0:
		matches = cat.SearchStartCount(*start, *count)
	default:
		matches = cat.Entries()
	}
	searchTime := time.Since(t0)

	fmt.Printf("cataloged %d files in %v (%d header reads; unchanged files come from %s); %d match (search %v)\n",
		cat.Len(), scanTime.Round(time.Microsecond), cat.Trace.Opens, dass.IndexFileName,
		len(matches), searchTime.Round(time.Microsecond))
	for _, e := range matches {
		fmt.Printf("  %012d  %4d ch × %6d samples  %s\n",
			e.Timestamp, e.Info.NumChannels, e.Info.NumSamples, e.Path)
	}
	if len(matches) == 0 {
		return
	}
	if *vca != "" {
		t0 = time.Now()
		if _, err := dass.CreateVCA(*vca, matches); err != nil {
			fatalData(err)
		}
		fmt.Printf("created VCA %s in %v (metadata only)\n", *vca, time.Since(t0).Round(time.Microsecond))
	}
	if *rca != "" {
		t0 = time.Now()
		tr, err := dass.CreateRCA(*rca, matches)
		if err != nil {
			fatalData(err)
		}
		fmt.Printf("created RCA %s in %v (%.1f MB copied)\n",
			*rca, time.Since(t0).Round(time.Millisecond), float64(tr.BytesRead)/1e6)
	}
}
